"""Self-contained bench cases behind ``repro bench``.

Each case mirrors one of the pytest benches under ``benchmarks/``
(named in its docstring) but runs without pytest so the harness can
execute it headlessly, pair every measurement with the paper model's
prediction, and serialize the lot into ``BENCH_*.json``.

A case is a plain function ``(tolerance) -> List[Comparison]`` — or,
when it has serving-tier extras to publish (latency percentiles,
per-tenant rows; schema version 3), ``(tolerance) -> CaseOutcome``;
the runner (:mod:`repro.bench.runner`) adds timing and the per-case
metric snapshot around it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.table.table import Table

from repro.analysis.cost_models import (
    c_e_best,
    c_e_worst,
    c_s,
    encoded_sparsity,
    simple_sparsity,
)
from repro.bench.compare import Comparison, compare
from repro.query.options import QueryOptions


@dataclass
class CaseOutcome:
    """Comparisons plus the optional serving-tier report extras.

    Most cases return a bare comparison list; a case that also has
    latency quantiles or per-tenant accounting to publish (the
    ``latency_percentiles`` / ``tenants`` keys of bench schema
    version 3) returns one of these instead.
    """

    comparisons: List[Comparison] = field(default_factory=list)
    #: Overall latency quantiles, name → milliseconds.
    latency_percentiles: Optional[Dict[str, float]] = None
    #: Per-tenant accounting rows: a ``tenant`` id plus numeric
    #: fields (request counts, latency quantiles).
    tenants: Optional[List[Dict[str, Any]]] = None


@dataclass(frozen=True)
class BenchCase:
    """A named, self-describing harness case."""

    name: str
    description: str
    run: Callable[[float], Union[List[Comparison], CaseOutcome]]
    #: Worker-thread counts a partition-parallel case ran with;
    #: serialized as the case's ``workers`` key (schema version 2).
    workers: Optional[Tuple[int, ...]] = None


def _fig9_table(m: int, n: int, seed: int) -> Table:
    from repro.workload.generators import build_table, uniform_column

    table: Table = build_table(
        f"fig9_m{m}", n, {"v": uniform_column(n, m, seed=seed)}
    )
    return table


def case_reduction(tolerance: float) -> List[Comparison]:
    """Mirrors ``benchmarks/bench_reduction.py``: exact vs greedy vs
    raw-DNF logical reduction on 12 contiguous selections (k = 8)."""
    from repro.boolean.reduction import minterm_dnf, reduce_values

    width, m, delta = 8, 200, 24
    dont_cares = list(range(m, 1 << width))
    selections = [
        list(range(start, start + delta))
        for start in (0, 16, 40, 77, 100, 131, 150, 176, 60, 88, 5, 123)
    ]
    totals = {"none": 0, "greedy": 0, "exact": 0}
    for codes in selections:
        totals["none"] += minterm_dnf(codes, width).vector_count()
        totals["greedy"] += reduce_values(
            codes, width, dont_cares=dont_cares, exact=False
        ).vector_count()
        totals["exact"] += reduce_values(
            codes, width, dont_cares=dont_cares, exact=True
        ).vector_count()
    return [
        compare(
            "raw minterm DNF reads all k vectors",
            totals["none"],
            len(selections) * c_e_worst(m),
            mode="eq",
            unit="vectors",
            tolerance=tolerance,
        ),
        compare(
            "exact cover never beats greedy upward",
            totals["exact"],
            totals["greedy"],
            mode="le",
            unit="vectors",
            tolerance=tolerance,
        ),
        compare(
            "reduction stays under the worst-case line",
            totals["exact"],
            len(selections) * c_e_worst(m),
            mode="le",
            unit="vectors",
            tolerance=tolerance,
        ),
    ]


def case_fig9_small(tolerance: float) -> List[Comparison]:
    """Mirrors ``benchmarks/bench_fig9.py`` (panel a, |A| = 50): real
    simple + aligned encoded indexes against the c_s / c_e curves."""
    from repro.encoding.mapping import MappingTable
    from repro.index.encoded_bitmap import EncodedBitmapIndex
    from repro.index.simple_bitmap import SimpleBitmapIndex
    from repro.query.predicates import InList

    m = 50
    table = _fig9_table(m, n=1500, seed=1)
    values = sorted(table.column("v").distinct_values())
    simple = SimpleBitmapIndex(table, "v")
    mapping = MappingTable.from_pairs([(v, v) for v in values])
    encoded = EncodedBitmapIndex(
        table, "v", encoding=mapping, void_mode="vector",
        null_mode="vector",
    )
    deltas = [1, 2, 4, 8, 16, 32]
    comparisons: List[Comparison] = []
    total_ce_measured = 0
    total_ce_best = 0
    for delta in deltas:
        selected = values[:delta]
        simple.lookup(InList("v", selected))
        comparisons.append(
            compare(
                f"delta={delta} simple bitmap cost c_s",
                simple.last_cost.vectors_accessed,
                c_s(delta),
                mode="eq",
                unit="vectors",
                tolerance=tolerance,
            )
        )
        measured_ce = encoded.reduced_function(selected).vector_count()
        total_ce_measured += measured_ce
        total_ce_best += c_e_best(delta, m)
        comparisons.append(
            compare(
                f"delta={delta} encoded cost under worst case",
                measured_ce,
                c_e_worst(m),
                mode="le",
                unit="vectors",
                tolerance=tolerance,
            )
        )
    comparisons.append(
        compare(
            "aligned encoding tracks best-case curve (total)",
            total_ce_measured,
            total_ce_best,
            mode="approx",
            unit="vectors",
            tolerance=tolerance,
        )
    )
    return comparisons


def case_table1_example(tolerance: float) -> List[Comparison]:
    """The paper's first worked example through the full query stack:
    traced execution of ``A IN ('a','b')`` must read exactly the
    ``c_e_best(2, 3)`` vectors the model predicts (the reduced
    expression is ``B1'``)."""
    from repro.obs.demo import table1_scenario
    from repro.query.executor import Executor

    scenario = table1_scenario()
    executor = Executor(scenario.catalog)
    result = executor.select(
        scenario.table, scenario.predicate, trace=True
    )
    trace = result.trace
    assert trace is not None and trace.accesses
    measured = len(trace.accesses[0].vectors)
    return [
        compare(
            "traced reduced-expression vector reads = model c_e",
            measured,
            c_e_best(2, 3),
            mode="eq",
            unit="vectors",
            tolerance=tolerance,
        ),
        compare(
            "query selects the four a/b rows",
            result.count(),
            4,
            mode="eq",
            unit="rows",
            tolerance=tolerance,
        ),
    ]


def case_sparsity(tolerance: float) -> List[Comparison]:
    """Mirrors ``benchmarks/bench_sparsity.py``: measured vector
    sparsity against the Section 3.1 models."""
    from repro.index.encoded_bitmap import EncodedBitmapIndex
    from repro.index.simple_bitmap import SimpleBitmapIndex

    comparisons: List[Comparison] = []
    for m in (16, 64):
        table = _fig9_table(m, n=2000, seed=m)
        simple = SimpleBitmapIndex(table, "v")
        encoded = EncodedBitmapIndex(table, "v")
        comparisons.append(
            compare(
                f"m={m} simple sparsity ~ (m-1)/m",
                simple.average_sparsity(),
                simple_sparsity(m),
                mode="approx",
                unit="fraction",
                tolerance=tolerance,
            )
        )
        comparisons.append(
            compare(
                f"m={m} encoded sparsity ~ 1/2",
                1.0 - encoded.average_density(),
                encoded_sparsity(),
                mode="approx",
                unit="fraction",
                tolerance=tolerance,
            )
        )
    return comparisons


def case_page_io(tolerance: float) -> List[Comparison]:
    """Mirrors ``benchmarks/bench_page_io.py``: page-level reads keep
    the encoded advantage, and the buffer pool amortises repeats."""
    from repro.index.paged import (
        PagedEncodedBitmapIndex,
        PagedSimpleBitmapIndex,
    )
    from repro.query.predicates import InList

    m, n, delta = 50, 8000, 16
    table = _fig9_table(m, n=n, seed=21)
    values = sorted(table.column("v").distinct_values())
    # The pool must hold one page per encoded vector (k = 6 at m = 50)
    # for the repeat lookup to be fully amortised.
    simple = PagedSimpleBitmapIndex(
        table, "v", page_size=1024, pool_capacity=16
    )
    encoded = PagedEncodedBitmapIndex(
        table, "v", page_size=1024, pool_capacity=16
    )
    predicate = InList("v", values[:delta])
    simple.store.stats.reset()
    simple.lookup(predicate)
    simple_pages = simple.store.stats.logical_reads
    encoded.store.stats.reset()
    encoded.lookup(predicate)
    encoded_pages = encoded.store.stats.logical_reads
    # Repeat the encoded lookup: pages come back from the pool.
    encoded.store.stats.reset()
    encoded.lookup(predicate)
    repeat_physical = encoded.store.stats.physical_reads
    return [
        compare(
            f"delta={delta} encoded page reads <= simple",
            encoded_pages,
            simple_pages,
            mode="le",
            unit="pages",
            tolerance=tolerance,
        ),
        compare(
            "repeat lookup is served from the buffer pool",
            repeat_physical,
            0,
            mode="eq",
            unit="pages",
            tolerance=tolerance,
        ),
    ]


def case_worst_case(tolerance: float) -> List[Comparison]:
    """Mirrors ``benchmarks/bench_worst_case.py``: the Section 3.2
    area-ratio / savings numbers printed in the paper."""
    from repro.analysis.savings import worst_case_summary

    expectations: List[Tuple[int, float, float]] = [
        (50, 0.84, 0.83),
        (1000, 0.90, 0.90),
    ]
    comparisons: List[Comparison] = []
    for m, area_ratio, best_saving in expectations:
        summary = worst_case_summary(m)
        comparisons.append(
            compare(
                f"m={m} worst-case area ratio",
                round(summary.area_ratio, 2),
                area_ratio,
                mode="eq",
                unit="ratio",
                tolerance=tolerance,
            )
        )
        comparisons.append(
            compare(
                f"m={m} peak point saving",
                summary.best_saving,
                best_saving,
                mode="ge",
                unit="fraction",
                tolerance=tolerance,
            )
        )
    return comparisons


def case_parallel_scan(
    tolerance: float,
    *,
    n: int,
    workers: Sequence[int] = (1, 4),
) -> List[Comparison]:
    """Partition-parallel batched scan on an unindexed column.

    The speedup line compares the batched multi-worker partitioned
    scan (whole-column numpy comparisons per partition) against the
    classic single-threaded executor's row-by-row fallback scan on
    the same data — the path every query took before ``repro.shard``
    existed.  The thread-scaling line compares wall time across
    worker counts on the *same* partitioned path; on a single-CPU
    host it only asserts that extra workers do not pathologically
    slow things down (>= 0.5), while the determinism lines assert
    worker count never changes rows, counts, or merged metrics.
    """
    import time

    from repro.query.executor import Executor
    from repro.query.predicates import Equals, InList, Range
    from repro.shard.executor import ParallelExecutor
    from repro.shard.partition import PartitionedTable
    from repro.table.catalog import Catalog

    m = 97
    values = [i % m for i in range(n)]
    plain = Table.from_columns("scan_plain", {"v": values})
    ptable = PartitionedTable.from_columns(
        "scan_part", {"v": values}, partitions=4
    )
    predicates = [
        Range("v", 10, 30),
        Equals("v", 7),
        InList("v", [3, 5, 9, 60]),
        Range("v", 50, 80),
    ]

    catalog = Catalog()
    catalog.register_table(plain)
    classic = Executor(catalog)
    wall = time.perf_counter()
    reference = [classic.select(plain, p) for p in predicates]
    classic_seconds = time.perf_counter() - wall

    counts = sorted(set(workers))
    executor = ParallelExecutor(ptable, workers=max(counts))
    timings = {}
    outcomes = {}
    for count in counts:
        # Best of two runs: the first execution after table build
        # pays allocator/cache warm-up that would skew the ratio.
        best = float("inf")
        for _attempt in range(2):
            wall = time.perf_counter()
            outcomes[count] = executor.execute_many(
                predicates, QueryOptions(workers=count)
            )
            best = min(best, time.perf_counter() - wall)
        timings[count] = best
    low, high = counts[0], counts[-1]

    row_mismatches = sum(
        1
        for a, b in zip(outcomes[low], outcomes[high])
        if a.row_ids() != b.row_ids()
    )
    metric_mismatches = sum(
        1
        for a, b in zip(outcomes[low], outcomes[high])
        if a.metrics != b.metrics
    )
    reference_mismatches = sum(
        1
        for ref, res in zip(reference, outcomes[high])
        if ref.row_ids() != res.row_ids()
    )
    return [
        compare(
            f"speedup: batched {high}-worker partitioned scan vs "
            "classic row scan",
            classic_seconds / max(timings[high], 1e-9),
            2.0,
            mode="ge",
            unit="ratio",
            tolerance=tolerance,
        ),
        compare(
            f"thread scaling: {low}-worker / {high}-worker wall time",
            timings[low] / max(timings[high], 1e-9),
            0.5,
            mode="ge",
            unit="ratio",
            tolerance=tolerance,
        ),
        compare(
            "determinism: queries whose rows differ across worker "
            "counts",
            row_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
        compare(
            "determinism: queries whose merged metrics differ across "
            "worker counts",
            metric_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
        compare(
            "vectorized partition scan matches the classic reference "
            "rows",
            reference_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
    ]


#: Shape of the kernel-ablation bench: a shared global mapping over
#: ``KERNEL_DOMAIN`` values, split across ``KERNEL_PARTITIONS``
#: row-range partitions, queried by ``KERNEL_QUERIES`` distinct
#: IN-lists of ``KERNEL_DELTA`` values each (non-contiguous, so every
#: reduction goes through Quine-McCluskey rather than the interval
#: fast path).
KERNEL_PARTITIONS = 32
KERNEL_DOMAIN = 400
KERNEL_DELTA = 40
KERNEL_QUERIES = 6


def case_kernel_eval(
    tolerance: float,
    *,
    n: int,
    workers: Sequence[int] = (1, 4),
) -> List[Comparison]:
    """Compiled retrieval kernels + cache stack vs the legacy tree walk.

    Two identical partitioned index stacks over one shared global
    mapping: the default (``use_kernels=True``: compiled word-level
    kernels, process-wide reduction/compile caches) against the legacy
    reference configuration (``use_kernels=False``: tree-walking
    ``evaluate_dnf``, per-index-only reduction memoisation).  The
    speedup line times one *cold* batch of distinct IN-list queries
    per stack at ``workers=1`` — every per-index and process-wide
    cache cleared first — so the baseline pays Quine-McCluskey in
    every partition while the kernel stack reduces and compiles once
    per predicate and shares the result across partitions.

    The eq-0 lines pin the correctness contract: kernel and tree
    stacks must return identical rows with identical access accounting
    (the paper's ``c_e``), and the kernel stack must be deterministic
    across worker counts.  The popcount lines bench the word-popcount
    dispatch (``np.bitwise_count`` or the 16-bit LUT) against the
    legacy ``unpackbits`` path on the same words.
    """
    import random
    import time

    import numpy as np

    from repro.bitmap.ops import (
        popcount_words,
        popcount_words_unpackbits,
    )
    from repro.boolean.reduction import (
        clear_reduction_cache,
        reduction_cache_stats,
    )
    from repro.encoding.mapping import MappingTable
    from repro.index.base import Index
    from repro.index.encoded_bitmap import EncodedBitmapIndex
    from repro.kernels import clear_compile_cache, compile_cache_stats
    from repro.query.predicates import InList, Predicate
    from repro.shard.executor import ParallelExecutor
    from repro.shard.index import PartitionedIndex
    from repro.shard.partition import PartitionedTable

    values = [(i * 48271) % KERNEL_DOMAIN for i in range(n)]
    # One mapping for every partition of both stacks: identical codes
    # mean identical cache keys, which is what unlocks cross-partition
    # sharing (see repro.shard.executor's module docstring).
    mapping = MappingTable.from_values(
        list(range(KERNEL_DOMAIN)), reserve_void_zero=True
    )
    rng = random.Random(97)
    predicates: List[Predicate] = [
        InList("v", sorted(rng.sample(range(KERNEL_DOMAIN), KERNEL_DELTA)))
        for _ in range(KERNEL_QUERIES)
    ]

    def build_stack(
        name: str, use_kernels: bool
    ) -> Tuple[ParallelExecutor, List[Index]]:
        ptable = PartitionedTable.from_columns(
            name, {"v": values}, partitions=KERNEL_PARTITIONS
        )
        index = PartitionedIndex(
            ptable,
            "v",
            factory=lambda table, column: EncodedBitmapIndex(
                table, column, encoding=mapping, use_kernels=use_kernels
            ),
        )
        return ParallelExecutor(ptable, workers=max(counts)), index.children

    def clear_all(children: List[Index]) -> None:
        for child in children:
            child.clear_caches()  # type: ignore[attr-defined]
        clear_reduction_cache()
        clear_compile_cache()

    def cold_batch_seconds(
        executor: ParallelExecutor, children: List[Index]
    ) -> float:
        # Best of three fully-cold passes: each starts with every
        # per-index and process-wide cache empty, so a pass measures
        # the whole reduce -> (compile ->) evaluate pipeline, not a
        # warmed-up remnant of the previous one.
        best = float("inf")
        for _attempt in range(3):
            clear_all(children)
            start = time.perf_counter()
            executor.execute_many(predicates, QueryOptions(workers=1))
            best = min(best, time.perf_counter() - start)
        return best

    counts = sorted(set(workers))
    low, high = counts[0], counts[-1]
    kernel_exec, kernel_children = build_stack("kernel_on", True)
    tree_exec, tree_children = build_stack("kernel_off", False)

    tree_seconds = cold_batch_seconds(tree_exec, tree_children)
    kernel_seconds = cold_batch_seconds(kernel_exec, kernel_children)

    # One more cold batch, instrumented: the process-wide cache hit
    # deltas show partitions actually sharing reductions and kernels.
    clear_all(kernel_children)
    red_hits_before = reduction_cache_stats()[0]
    comp_hits_before = compile_cache_stats()[0]
    kernel_high = kernel_exec.execute_many(
        predicates, QueryOptions(workers=high)
    )
    red_hits = reduction_cache_stats()[0] - red_hits_before
    comp_hits = compile_cache_stats()[0] - comp_hits_before
    # Warm runs for the determinism lines (cache state no longer
    # changes, so only worker count varies between the two).
    kernel_low = kernel_exec.execute_many(
        predicates, QueryOptions(workers=low)
    )
    kernel_high = kernel_exec.execute_many(
        predicates, QueryOptions(workers=high)
    )
    tree_high = tree_exec.execute_many(
        predicates, QueryOptions(workers=high)
    )

    tree_row_mismatches = sum(
        1
        for a, b in zip(kernel_high, tree_high)
        if a.row_ids() != b.row_ids()
    )
    tree_ce_mismatches = sum(
        1
        for a, b in zip(kernel_high, tree_high)
        if a.cost.vectors_accessed != b.cost.vectors_accessed
    )
    worker_mismatches = sum(
        1
        for a, b in zip(kernel_low, kernel_high)
        if a.row_ids() != b.row_ids()
        or a.cost.vectors_accessed != b.cost.vectors_accessed
    )

    # Word-popcount dispatch vs the legacy unpackbits path, same words.
    nwords = 1 << 14 if n < PARALLEL_FULL_ROWS else 1 << 17
    words = np.arange(nwords, dtype=np.uint64)
    words = words * np.uint64(6364136223846793005) + np.uint64(
        1442695040888963407
    )
    words ^= words >> np.uint64(33)

    def best_of(run: Callable[[], int], repeats: int = 3) -> float:
        best = float("inf")
        for _attempt in range(repeats):
            start = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - start)
        return best

    fast_seconds = best_of(lambda: popcount_words(words))
    legacy_seconds = best_of(lambda: popcount_words_unpackbits(words))
    popcount_diff = abs(
        popcount_words(words) - popcount_words_unpackbits(words)
    )

    speedup_target = 5.0 if n >= PARALLEL_FULL_ROWS else 1.5
    return [
        compare(
            "speedup: compiled kernel + cache stack vs tree walk, "
            "cold batch, workers=1",
            tree_seconds / max(kernel_seconds, 1e-9),
            speedup_target,
            mode="ge",
            unit="ratio",
            tolerance=tolerance,
        ),
        compare(
            "determinism: queries whose rows differ, kernel vs tree",
            tree_row_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
        compare(
            "determinism: queries whose c_e differs, kernel vs tree",
            tree_ce_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
        compare(
            f"determinism: kernel rows/c_e differ between workers="
            f"{low} and workers={high}",
            worker_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
        compare(
            "cross-partition sharing: reduction-cache hits in one "
            "cold batch",
            red_hits,
            KERNEL_QUERIES,
            mode="ge",
            unit="hits",
            tolerance=tolerance,
        ),
        compare(
            "cross-partition sharing: compile-cache hits in one "
            "cold batch",
            comp_hits,
            KERNEL_QUERIES,
            mode="ge",
            unit="hits",
            tolerance=tolerance,
        ),
        compare(
            f"popcount dispatch vs legacy unpackbits on {nwords} words",
            legacy_seconds / max(fast_seconds, 1e-9),
            1.2,
            mode="ge",
            unit="ratio",
            tolerance=tolerance,
        ),
        compare(
            "popcount dispatch agrees with the unpackbits reference",
            popcount_diff,
            0,
            mode="eq",
            unit="bits",
            tolerance=tolerance,
        ),
    ]


#: Threads / per-thread operations for the cache-contention case.
CONTENTION_THREADS = 4
CONTENTION_ITERATIONS = 36


def case_cache_contention(tolerance: float) -> List[Comparison]:
    """Mirrors ``tests/test_concurrency.py``: N threads hammer the
    process-wide reduction and compile caches through their public
    entry points under the dynamic sanitizer's instrumented locks
    (docs/concurrency.md).

    Every ``reduce_values_cached`` / ``compile_function`` call does
    exactly one ``get`` on its cache, so the hit+miss ledger must
    balance to the operation count; concurrent misses of the same key
    are benign (the factory runs outside the lock) but bounded by
    threads x distinct keys because neither cache evicts at this
    working-set size.  The sanitizer must see an acyclic lock order,
    and the contended-acquisition count is recorded as a measured
    contention line.
    """
    from repro.boolean.reduction import (
        clear_reduction_cache,
        reduce_values_cached,
        reduction_cache,
    )
    from repro.kernels.compiler import (
        _compile_cache,
        clear_compile_cache,
        compile_function,
    )
    from repro.lint.sanitizer import (
        LockOrderRecorder,
        instrument,
        make_jitter,
        run_stress,
    )

    threads, iterations = CONTENTION_THREADS, CONTENTION_ITERATIONS
    ops = threads * iterations
    width = 6
    # 12 distinct contiguous selections -> 12 reduction keys and (the
    # reductions being value-distinct) 12 compiled kernels.
    selections = [tuple(range(start, start + 4)) for start in range(12)]

    clear_reduction_cache()
    clear_compile_cache()
    # clear() keeps lifetime hit/miss totals; measure deltas.
    red_hits0, red_misses0 = reduction_cache.hits, reduction_cache.misses
    comp_hits0, comp_misses0 = _compile_cache.hits, _compile_cache.misses

    recorder = LockOrderRecorder()
    jitter = make_jitter(17)
    red_lock = instrument(
        reduction_cache,
        recorder=recorder,
        name="boolean.reduction_cache._lock",
        jitter=jitter,
    )
    comp_lock = instrument(
        _compile_cache,
        recorder=recorder,
        name="kernels.compile_cache._lock",
        jitter=jitter,
    )

    def workload(tid: int, i: int) -> None:
        codes = selections[(tid + i) % len(selections)]
        function = reduce_values_cached(codes, width)
        compile_function(function)

    try:
        report = run_stress(
            workload,
            threads=threads,
            iterations=iterations,
            seed=17,
            recorder=recorder,
        )
    finally:
        # Benches share the process with later cases/tests: put the
        # native locks back so instrumentation does not leak.
        reduction_cache._lock = red_lock._inner
        _compile_cache._lock = comp_lock._inner

    red_gets = (reduction_cache.hits - red_hits0) + (
        reduction_cache.misses - red_misses0
    )
    comp_gets = (_compile_cache.hits - comp_hits0) + (
        _compile_cache.misses - comp_misses0
    )
    red_misses = reduction_cache.misses - red_misses0
    comp_misses = _compile_cache.misses - comp_misses0
    miss_bound = threads * len(selections)

    return [
        compare(
            f"reduction-cache hit+miss ledger balances over {ops} "
            f"contended gets ({threads} threads)",
            red_gets,
            ops,
            mode="eq",
            unit="gets",
            tolerance=tolerance,
        ),
        compare(
            f"compile-cache hit+miss ledger balances over {ops} "
            f"contended gets ({threads} threads)",
            comp_gets,
            ops,
            mode="eq",
            unit="gets",
            tolerance=tolerance,
        ),
        compare(
            "reduction-cache misses bounded by threads x distinct "
            "keys (no eviction, stampede misses only)",
            red_misses,
            miss_bound,
            mode="le",
            unit="misses",
            tolerance=tolerance,
        ),
        compare(
            "compile-cache misses bounded by threads x distinct keys",
            comp_misses,
            miss_bound,
            mode="le",
            unit="misses",
            tolerance=tolerance,
        ),
        compare(
            "lock-order inversions seen by the sanitizer",
            len(report.inversions),
            0,
            mode="eq",
            unit="pairs",
            tolerance=tolerance,
        ),
        compare(
            "worker errors under seeded interleaving",
            len(report.errors),
            0,
            mode="eq",
            unit="errors",
            tolerance=tolerance,
        ),
        compare(
            "contended lock acquisitions observed (measured, lower "
            "bound trivially holds)",
            report.lock_waits,
            0,
            mode="ge",
            unit="waits",
            tolerance=tolerance,
        ),
    ]


#: Streaming-ingest shape: a saved base, then WAL-logged append batches
#: small enough to stay inside the delta tier (no plane rebuilds).
INGEST_BASE_ROWS = 512
INGEST_BATCHES = 16
INGEST_BATCH_ROWS = 32
#: Conservative floors/ceilings so the case is a smoke check, not a
#: machine-speed lottery: any working build clears these by far.
INGEST_RATE_FLOOR = 50.0
RECOVERY_SECONDS_CEILING = 30.0


def case_streaming_ingest(tolerance: float) -> List[Comparison]:
    """Mirrors ``tests/test_delta.py`` + ``tests/test_crash_matrix.py``:
    WAL-logged append batches stream into a saved database while the
    encoded index absorbs them in its delta tier (docs/robustness.md).

    Measures ingest throughput (rows/sec through the durable
    log-before-apply path), checks the delta merge stays bit-identical
    — rows *and* ``c_e`` — to a from-scratch rebuild, that streaming
    never triggers a plane rebuild below the compaction threshold, and
    times :meth:`repro.database.Database.recover` replaying the log.
    """
    import shutil
    import tempfile
    import time

    from repro.database import Database
    from repro.index.encoded_bitmap import EncodedBitmapIndex
    from repro.query.predicates import Equals

    values = ["ale", "bock", "cider", "dunkel"]
    base = INGEST_BASE_ROWS
    batches, batch = INGEST_BATCHES, INGEST_BATCH_ROWS
    ingested = batches * batch
    directory = tempfile.mkdtemp(prefix="ebi_bench_ingest_")
    try:
        db = Database()
        db.create_table(
            "sales",
            {"product": [values[i % 4] for i in range(base)]},
        )
        db.create_index("sales", "product")
        db.save(directory)
        index = db.catalog.indexes_on("sales", "product")[0]
        index.lookup(Equals("product", values[0]))  # warm the planes
        rebuilds_before = index.plane_rebuilds

        started = time.perf_counter()
        for b in range(batches):
            db.append_rows(
                "sales",
                [
                    {"product": values[(b + i) % 4]}
                    for i in range(batch)
                ],
            )
        ingest_seconds = time.perf_counter() - started
        rate = ingested / max(ingest_seconds, 1e-9)
        rebuilds_during = index.plane_rebuilds - rebuilds_before

        table = db.table("sales")
        rebuilt = EncodedBitmapIndex(
            table, "product", encoding=index.mapping
        )
        row_mismatches = 0
        cost_mismatches = 0
        for value in values:
            expected = rebuilt.lookup(Equals("product", value))
            actual = index.lookup(Equals("product", value))
            if list(actual) != list(expected):
                row_mismatches += 1
            if (
                index.last_cost.vectors_accessed
                != rebuilt.last_cost.vectors_accessed
            ):
                cost_mismatches += 1

        started = time.perf_counter()
        recovered = Database.recover(directory)
        recovery_seconds = time.perf_counter() - started
        recovered_rows = len(recovered.table("sales"))
        fsck_failures = sum(
            0 if report.ok else 1
            for report in recovered.fsck().values()
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    return [
        compare(
            f"durable ingest throughput over {ingested} rows in "
            f"{batches} WAL-logged batches (measured, floor trivially "
            "holds)",
            rate,
            INGEST_RATE_FLOOR,
            mode="ge",
            unit="rows/s",
            tolerance=tolerance,
        ),
        compare(
            "plane rebuilds while streaming below the compaction "
            "threshold (delta tier absorbs every batch)",
            rebuilds_during,
            0,
            mode="eq",
            unit="rebuilds",
            tolerance=tolerance,
        ),
        compare(
            "domain values whose delta-merged rows differ from a "
            "from-scratch rebuild",
            row_mismatches,
            0,
            mode="eq",
            unit="values",
            tolerance=tolerance,
        ),
        compare(
            "domain values whose c_e differs from a from-scratch "
            "rebuild (the delta must not change what a query is "
            "charged)",
            cost_mismatches,
            0,
            mode="eq",
            unit="values",
            tolerance=tolerance,
        ),
        compare(
            "rows present after WAL replay (base + every acked batch)",
            recovered_rows,
            base + ingested,
            mode="eq",
            unit="rows",
            tolerance=tolerance,
        ),
        compare(
            "fsck failures on the recovered database",
            fsck_failures,
            0,
            mode="eq",
            unit="indexes",
            tolerance=tolerance,
        ),
        compare(
            "recovery wall time (measured; generous ceiling)",
            recovery_seconds,
            RECOVERY_SECONDS_CEILING,
            mode="le",
            unit="seconds",
            tolerance=tolerance,
        ),
    ]


#: Compression-frontier shape: a Zipf-skewed fact column over
#: ``COMPRESSION_DOMAIN`` values plus a low-cardinality secondary
#: column (so ``hist``'s ascending-cardinality priority picks a
#: different primary sort column than ``lex``'s caller order),
#: queried by ``COMPRESSION_QUERIES`` IN-lists of
#: ``COMPRESSION_DELTA`` values each.
COMPRESSION_DOMAIN = 64
COMPRESSION_SECONDARY = 8
COMPRESSION_DELTA = 8
COMPRESSION_QUERIES = 4
#: Acceptance floor: the best sorted ordering must at least halve the
#: word-aligned footprint of the unordered layout.
COMPRESSION_RATIO_FLOOR = 2.0
#: Worst case for word-aligned runs over incompressible planes:
#: alternating fill/literal segments cost one header word per literal
#: word, 1.5x the packed bytes — even the unordered layout must stay
#: inside this envelope.
COMPRESSION_WAH_ENVELOPE = 1.5


def case_compression(tolerance: float, *, n: int) -> List[Comparison]:
    """Space x speed frontier of word-aligned run compression under
    build-time row reordering (docs/compression.md).

    For each ordering in :data:`repro.shard.reorder.ORDERINGS` the
    case physically permutes a copy of the same two-column table
    (:func:`~repro.shard.reorder.row_permutation` +
    :meth:`~repro.table.table.Table.apply_permutation`), builds a
    packed encoded index over it, snapshots the planes into a
    :class:`~repro.kernels.runs.CompressedPlaneSet`, and reports the
    frontier: compressed plane bytes against the packed baseline,
    page reads charged per distinct plane a query batch touches (a
    word-aligned complement keeps the segmentation, so the positive
    plane's footprint stands for either polarity), and the wall time
    of the run-kernel query batch.

    The eq-0 lines pin the compressed-execution contract: one
    compiled kernel must return identical rows and identical access
    accounting (the paper's ``c_e``) on packed planes, on word-aligned
    runs, and through the legacy tree walk — and, mapped back through
    each permutation, every ordering must select the same original
    rows.
    """
    import random
    import time

    import numpy as np

    from repro.boolean.evaluator import AccessCounter, evaluate_dnf
    from repro.encoding.mapping import MappingTable
    from repro.index.encoded_bitmap import EncodedBitmapIndex
    from repro.kernels.compiler import CompiledKernel, compile_function
    from repro.kernels.runs import CompressedPlaneSet
    from repro.shard.reorder import ORDERINGS, row_permutation
    from repro.storage.page import PAGE_SIZE_DEFAULT
    from repro.table.table import Table
    from repro.workload.generators import uniform_column, zipf_column

    mapping = MappingTable.from_values(
        list(range(COMPRESSION_DOMAIN)), reserve_void_zero=True
    )
    fact = zipf_column(n, COMPRESSION_DOMAIN, seed=31)
    secondary = uniform_column(n, COMPRESSION_SECONDARY, seed=32)
    rng = random.Random(53)
    selections = [
        sorted(rng.sample(range(COMPRESSION_DOMAIN), COMPRESSION_DELTA))
        for _ in range(COMPRESSION_QUERIES)
    ]

    def page_count(nbytes: int) -> int:
        return -(-nbytes // PAGE_SIZE_DEFAULT)

    plane_bytes: Dict[str, int] = {}
    batch_pages: Dict[str, int] = {}
    batch_seconds: Dict[str, float] = {}
    row_mismatches = 0
    ce_mismatches = 0
    cross_mismatches = 0
    packed_plane_bytes = 0
    packed_batch_pages = 0
    packed_seconds = 0.0
    baseline_rows: List[np.ndarray] = []

    def batch_time(
        kernels: Sequence[Tuple[object, CompiledKernel]], planes: object
    ) -> float:
        best = float("inf")
        for _attempt in range(3):
            start = time.perf_counter()
            for _fn, kernel in kernels:
                kernel.evaluate(planes)  # type: ignore[arg-type]
            best = min(best, time.perf_counter() - start)
        return best

    for ordering in ORDERINGS:
        table = Table.from_columns(
            f"compression_{ordering}", {"v": fact, "w": secondary}
        )
        perm = row_permutation(table, ["v", "w"], ordering)
        if ordering != "unordered":
            table.apply_permutation(perm)
        perm_array = np.asarray(perm, dtype=np.int64)
        index = EncodedBitmapIndex(table, "v", encoding=mapping)
        packed = index.planes()
        runs = CompressedPlaneSet.from_vectors(
            [index.vector(i) for i in range(index.width)], len(table)
        )
        plane_bytes[ordering] = runs.nbytes()
        packed_plane_bytes = runs.packed_nbytes()
        per_plane_packed = runs.nwords * 8

        kernels = [
            (fn, compile_function(fn))
            for fn in (
                index.reduced_function(values) for values in selections
            )
        ]

        ordering_pages = 0
        packed_pages = 0
        for qi, (fn, kernel) in enumerate(kernels):
            counter_packed = AccessCounter()
            rows_packed = kernel.evaluate(packed, counter_packed)
            counter_runs = AccessCounter()
            rows_runs = kernel.evaluate(runs, counter_runs)
            counter_tree = AccessCounter()
            rows_tree = evaluate_dnf(
                fn, index.vector, len(table), counter_tree
            )
            if not (rows_packed == rows_runs and rows_packed == rows_tree):
                row_mismatches += 1
            if (
                counter_packed.distinct_accesses
                != counter_runs.distinct_accesses
                or counter_packed.distinct_accesses
                != counter_tree.distinct_accesses
                or counter_packed.reads != counter_runs.reads
                or counter_packed.reads != counter_tree.reads
            ):
                ce_mismatches += 1
            for i in counter_runs.touched:
                ordering_pages += page_count(runs.plane(i).nbytes())
                packed_pages += page_count(per_plane_packed)
            selected = np.nonzero(rows_runs.to_mask())[0]
            original = np.sort(perm_array[selected])
            if ordering == "unordered":
                baseline_rows.append(original)
            elif not np.array_equal(original, baseline_rows[qi]):
                cross_mismatches += 1
        batch_pages[ordering] = ordering_pages
        batch_seconds[ordering] = batch_time(kernels, runs)
        if ordering == "unordered":
            packed_batch_pages = packed_pages
            packed_seconds = batch_time(kernels, packed)

    sorted_orderings = [o for o in ORDERINGS if o != "unordered"]
    best = min(sorted_orderings, key=lambda o: plane_bytes[o])
    ratio = plane_bytes["unordered"] / max(plane_bytes[best], 1)
    speed_ratio = packed_seconds / max(batch_seconds[best], 1e-9)

    comparisons: List[Comparison] = []
    for ordering in ORDERINGS:
        if ordering == "unordered":
            label = (
                "unordered: compressed plane bytes stay inside the "
                "word-aligned worst-case envelope"
            )
            predicted = COMPRESSION_WAH_ENVELOPE * packed_plane_bytes
        else:
            label = (
                f"{ordering}: compressed plane bytes vs the packed "
                "baseline"
            )
            predicted = float(packed_plane_bytes)
        comparisons.append(
            compare(
                label,
                plane_bytes[ordering],
                predicted,
                mode="le",
                unit="bytes",
                tolerance=tolerance,
            )
        )
    for ordering in ORDERINGS:
        comparisons.append(
            compare(
                f"{ordering}: run-kernel query batch wall time "
                "(measured, floor trivially holds)",
                batch_seconds[ordering],
                0.0,
                mode="ge",
                unit="seconds",
                tolerance=tolerance,
            )
        )
    comparisons.extend(
        [
            compare(
                f"run compression: unordered bytes / {best} bytes",
                ratio,
                COMPRESSION_RATIO_FLOOR,
                mode="ge",
                unit="ratio",
                tolerance=tolerance,
            ),
            compare(
                "rows: ordering x query runs where compressed kernel, "
                "packed kernel and tree walk disagree",
                row_mismatches,
                0,
                mode="eq",
                unit="queries",
                tolerance=tolerance,
            ),
            compare(
                "c_e: ordering x query runs where the three paths' "
                "access accounting disagrees",
                ce_mismatches,
                0,
                mode="eq",
                unit="queries",
                tolerance=tolerance,
            ),
            compare(
                "orderings x queries whose permutation-mapped rows "
                "differ from the unordered baseline",
                cross_mismatches,
                0,
                mode="eq",
                unit="queries",
                tolerance=tolerance,
            ),
            compare(
                f"page reads: {best} compressed batch vs packed planes",
                batch_pages[best],
                packed_batch_pages,
                mode="le",
                unit="pages",
                tolerance=tolerance,
            ),
            compare(
                f"run-kernel speed: packed batch / {best} compressed "
                "batch (measured)",
                speed_ratio,
                0.0,
                mode="ge",
                unit="ratio",
                tolerance=tolerance,
            ),
        ]
    )
    return comparisons


# ---------------------------------------------------------------------------
# serving tier: result cache + process pool + multi-tenant zipf workload
# ---------------------------------------------------------------------------

#: Reads measured per execution path in the CPU-bound mix.
SERVING_READS = 120

#: Operations driven through the :class:`repro.serving.Server` for the
#: latency/throughput segment (reads and cache-invalidating appends).
SERVING_SERVED_OPS = 400

#: Repeats per path; the best wall time is kept (scheduler noise).
SERVING_REPEATS = 3


def case_serving(tolerance: float, *, rows: int) -> CaseOutcome:
    """The serving tier end to end (docs/serving.md).

    Three segments over one zipf-skewed multi-tenant workload
    (:class:`repro.serving.workload.SyntheticWorkload`):

    1. **Bit-identity** — the result cache's warm hits and the
       process-pool backend must answer bit-identically (rows *and*
       ``c_e``) to uncached thread-pool execution.
    2. **CPU-bound mix** — single-query throughput of the uncached
       thread pool vs the process pool vs the result cache; the
       cached and process paths must each beat the thread baseline.
    3. **Served workload** — the same mix driven through a live
       :class:`repro.serving.Server` (reads submitted per tenant,
       appends invalidating the cache mid-stream); queries/sec plus
       p50/p99 latency land in the report's serving keys.
    """
    from repro.database import Database
    from repro.obs.metrics import get_registry
    from repro.serving.result_cache import results_identical
    from repro.serving.server import Server
    from repro.serving.workload import ReadOp, SyntheticWorkload

    workload = SyntheticWorkload(
        seed=11, tenants=4, rows=rows, partitions=4
    )
    db = Database()
    workload.build(db)
    table = workload.TABLE
    reads = [
        op
        for op in workload.operations(4 * SERVING_READS)
        if isinstance(op, ReadOp)
    ][:SERVING_READS]
    predicates = [op.predicate for op in reads]

    thread_opts = QueryOptions(workers=4, use_cache=False)
    process_opts = QueryOptions(backend="process", use_cache=False)
    cached_opts = QueryOptions(workers=4, use_cache=True)
    comparisons: List[Comparison] = []
    try:
        # -- segment 1: bit-identity ------------------------------------
        uncached = [db.query(table, p, thread_opts) for p in predicates]
        for p in predicates:  # cold pass fills the cache
            db.query(table, p, cached_opts)
        warm = [db.query(table, p, cached_opts) for p in predicates]
        via_process = [
            db.query(table, p, process_opts) for p in predicates
        ]
        row_mismatches = sum(
            1
            for u, w in zip(uncached, warm)
            if len(u.vector) != len(w.vector)
            or u.vector.words.tobytes() != w.vector.words.tobytes()
        )
        ce_mismatches = sum(
            1
            for u, w in zip(uncached, warm)
            if u.cost.vectors_accessed != w.cost.vectors_accessed
        )
        cache_misses = sum(1 for w in warm if not w.cached)
        process_mismatches = sum(
            1
            for u, v in zip(uncached, via_process)
            if not results_identical(u, v)
        )
        comparisons.extend(
            [
                compare(
                    "cached vs uncached row mismatches",
                    row_mismatches,
                    0,
                    unit="queries",
                    tolerance=tolerance,
                ),
                compare(
                    "cached vs uncached c_e mismatches",
                    ce_mismatches,
                    0,
                    unit="queries",
                    tolerance=tolerance,
                ),
                compare(
                    "warm queries not served from cache",
                    cache_misses,
                    0,
                    unit="queries",
                    tolerance=tolerance,
                ),
                compare(
                    "process vs thread mismatches (rows or c_e)",
                    process_mismatches,
                    0,
                    unit="queries",
                    tolerance=tolerance,
                ),
            ]
        )

        # -- segment 2: CPU-bound single-query mix ----------------------
        def loop_wall(opts: QueryOptions) -> float:
            start = time.perf_counter()
            for p in predicates:
                db.query(table, p, opts)
            return time.perf_counter() - start

        walls: Dict[str, float] = {}
        for label, opts in (
            ("thread", thread_opts),
            ("process", process_opts),
            ("cached", cached_opts),
        ):
            best = loop_wall(opts)
            for _ in range(SERVING_REPEATS - 1):
                best = min(best, loop_wall(opts))
            walls[label] = best
        qps = {
            label: SERVING_READS / wall for label, wall in walls.items()
        }
        comparisons.extend(
            [
                compare(
                    "result-cache q/s vs uncached thread q/s",
                    qps["cached"],
                    qps["thread"],
                    mode="ge",
                    unit="q/s",
                    tolerance=tolerance,
                ),
                compare(
                    "process-pool q/s vs uncached thread q/s",
                    qps["process"],
                    qps["thread"],
                    mode="ge",
                    unit="q/s",
                    tolerance=tolerance,
                ),
            ]
        )

        # -- segment 3: served zipf multi-tenant read/write -------------
        operations = list(workload.operations(SERVING_SERVED_OPS))
        served_reads = sum(
            1 for op in operations if isinstance(op, ReadOp)
        )
        with Server(
            database=db,
            workers=2,
            queue_capacity=64,
            policy="block",
            default_timeout=120.0,
        ) as server:
            pending = []
            start = time.perf_counter()
            for op in operations:
                if isinstance(op, ReadOp):
                    pending.append(
                        server.submit(
                            table,
                            op.predicate,
                            options=QueryOptions(tenant=op.tenant),
                        )
                    )
                else:
                    db.append(table, op.row)
            for request in pending:
                request.result(timeout=120.0)
            served_wall = time.perf_counter() - start
            stats = server.stats()
        served_qps = stats.completed / max(served_wall, 1e-9)
        comparisons.extend(
            [
                compare(
                    "served requests completed",
                    stats.completed,
                    served_reads,
                    unit="requests",
                    tolerance=tolerance,
                ),
                compare(
                    "served requests failed",
                    stats.failed,
                    0,
                    unit="requests",
                    tolerance=tolerance,
                ),
            ]
        )
        registry = get_registry()
        registry.gauge("serving.bench.thread_qps").set(qps["thread"])
        registry.gauge("serving.bench.process_qps").set(qps["process"])
        registry.gauge("serving.bench.cached_qps").set(qps["cached"])
        registry.gauge("serving.bench.served_qps").set(served_qps)
        latency = {
            f"{name}_ms": value * 1000.0
            for name, value in stats.latency_percentiles.items()
        }
        tenants = [
            {
                "tenant": row.tenant,
                "completed": row.completed,
                "failed": row.failed,
                **{
                    f"{name}_ms": value * 1000.0
                    for name, value in row.latency_percentiles.items()
                },
            }
            for row in stats.tenants.values()
        ]
        return CaseOutcome(
            comparisons=comparisons,
            latency_percentiles=latency,
            tenants=tenants,
        )
    finally:
        db.close()


# ---------------------------------------------------------------------------
# out-of-core scale: memory-mapped planes + partition spill/eviction
# ---------------------------------------------------------------------------

#: Shape of the out-of-core scale bench (docs/out_of_core.md): a
#: uniform fact column over ``SCALE_DOMAIN`` values in
#: ``SCALE_PARTITIONS`` row-range partitions, queried by
#: ``SCALE_QUERIES`` IN-lists of ``SCALE_DELTA`` values each, under a
#: residency budget of ``SCALE_BUDGET_FRACTION`` of the total packed
#: plane bytes — low enough that the serial streaming pass must cycle
#: every partition through spill/fault each query.
SCALE_DOMAIN = 64
SCALE_PARTITIONS = 16
SCALE_DELTA = 8
SCALE_QUERIES = 4
SCALE_BUDGET_FRACTION = 0.25
#: Acceptance ceiling: the high-water mark of resident plane bytes
#: must stay at or below this fraction of the fully-resident
#: footprint, or the bench is not actually out-of-core.
SCALE_PEAK_FRACTION = 0.5


def case_scale(tolerance: float, *, rows: int) -> List[Comparison]:
    """Out-of-core streaming execution at scale (docs/out_of_core.md).

    Two databases over the same ``rows``-row partitioned fact table:
    a fully-resident reference (no memory budget) and an out-of-core
    stack whose :class:`~repro.shard.residency.ResidencyManager`
    budget is :data:`SCALE_BUDGET_FRACTION` of the total packed plane
    bytes, forcing the serial streaming executor to spill cold
    partitions to CRC-headered plane files, fault them back as
    ``np.memmap``-backed :class:`~repro.kernels.mapped.MappedPlaneSet`
    snapshots, and prefetch the next partition while the current one
    evaluates.

    The strict lines pin the out-of-core contract: peak resident
    plane bytes at or below :data:`SCALE_PEAK_FRACTION` of the
    fully-resident footprint; measured physical page reads inside the
    Section 3 model envelope (at least ``c_e_best`` plane-row pages
    per fault, at most whole-file pages per fault + prefetch); and
    bit-identical rows *and* ``c_e`` against the fully-resident path.
    Streaming throughput (rows/sec through the spill/fault cycle) and
    process peak RSS land as gauges.
    """
    import resource
    import time

    from repro.database import Database
    from repro.obs.metrics import get_registry
    from repro.query.predicates import InList
    from repro.shard.index import PartitionedIndex
    from repro.storage.page import PAGE_SIZE_DEFAULT

    n = rows
    values = [(i * 48271) % SCALE_DOMAIN for i in range(n)]
    selections = [
        sorted(
            ((q * 13 + j * 5) % SCALE_DOMAIN)
            for j in range(SCALE_DELTA)
        )
        for q in range(SCALE_QUERIES)
    ]
    predicates = [InList("v", selected) for selected in selections]
    opts = QueryOptions(workers=1)

    def build(budget: Optional[int]) -> Database:
        db = Database(memory_budget_bytes=budget)
        db.create_table(
            "scale", {"v": values}, partitions=SCALE_PARTITIONS
        )
        db.create_index("scale", "v")
        return db

    def pages(nbytes: int) -> int:
        return -(-nbytes // PAGE_SIZE_DEFAULT)

    reference = build(None)
    try:
        index = reference.catalog.indexes_on("scale", "v")[0]
        assert isinstance(index, PartitionedIndex)
        child_bytes = [
            child.planes().matrix.nbytes for child in index.children
        ]
        total_plane_bytes = sum(child_bytes)
        child_words = [
            child.planes().nwords for child in index.children
        ]
        expected = [
            reference.query("scale", p, opts) for p in predicates
        ]

        budget = max(
            1, int(total_plane_bytes * SCALE_BUDGET_FRACTION)
        )
        streaming = build(budget)
        try:
            # Untimed warm pass: builds the dense planes, then cycles
            # them through the first spill wave.  The timed pass below
            # measures steady-state streaming: LRU fault-in + prefetch
            # against plane files, not first-touch index construction.
            for p in predicates:
                streaming.query("scale", p, opts)
            start = time.perf_counter()
            measured = [
                streaming.query("scale", p, opts) for p in predicates
            ]
            wall = time.perf_counter() - start
            report = streaming.residency_report("scale") or {}
        finally:
            streaming.close()
    finally:
        reference.close()

    rate = (n * SCALE_QUERIES) / max(wall, 1e-9)
    row_mismatches = sum(
        1
        for e, m in zip(expected, measured)
        if e.row_ids() != m.row_ids()
    )
    ce_mismatches = sum(
        1
        for e, m in zip(expected, measured)
        if e.cost.vectors_accessed != m.cost.vectors_accessed
    )

    faults = report.get("faults", 0)
    prefetches = report.get("prefetches", 0)
    physical = report.get("page_reads_physical", 0)
    # Section 3 envelope, page-granular: a fault serves at least one
    # query's best-case plane reads (c_e_best plane rows), and fault +
    # prefetch each touch at most a whole plane file.
    row_pages_min = min(pages(nwords * 8) for nwords in child_words)
    file_pages_max = max(pages(nbytes) for nbytes in child_bytes)
    model_floor = faults * c_e_best(SCALE_DELTA, SCALE_DOMAIN) * (
        row_pages_min
    )
    model_ceiling = (faults + prefetches) * file_pages_max

    registry = get_registry()
    registry.gauge("scale.bench.rows_per_sec").set(rate)
    registry.gauge("scale.bench.wall_seconds").set(wall)
    registry.gauge("scale.bench.rows").set(float(n))
    registry.gauge("scale.bench.peak_rss_bytes").set(
        float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024)
    )
    for name, value in report.items():
        registry.gauge(f"scale.residency.{name}").set(float(value))

    return [
        compare(
            "out-of-core engaged: partitions spilled to plane files",
            report.get("spills", 0),
            1,
            mode="ge",
            unit="spills",
            tolerance=tolerance,
        ),
        compare(
            "streaming pipeline engaged: next-partition prefetches",
            prefetches,
            1,
            mode="ge",
            unit="prefetches",
            tolerance=tolerance,
        ),
        compare(
            f"peak resident plane bytes <= "
            f"{SCALE_PEAK_FRACTION:.0%} of the fully-resident "
            "footprint",
            report.get("peak_resident_bytes", 0),
            SCALE_PEAK_FRACTION * total_plane_bytes,
            mode="le",
            unit="bytes",
            tolerance=tolerance,
        ),
        compare(
            "page reads >= Section 3 floor (c_e_best plane-row pages "
            "per fault)",
            physical,
            model_floor,
            mode="ge",
            unit="pages",
            tolerance=tolerance,
        ),
        compare(
            "page reads <= whole-file pages per fault + prefetch",
            physical,
            model_ceiling,
            mode="le",
            unit="pages",
            tolerance=tolerance,
        ),
        compare(
            "rows: queries where streaming differs from "
            "fully-resident",
            row_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
        compare(
            "c_e: queries where streaming access accounting differs "
            "from fully-resident",
            ce_mismatches,
            0,
            mode="eq",
            unit="queries",
            tolerance=tolerance,
        ),
        compare(
            "streaming scan throughput (measured, floor trivially "
            "holds)",
            rate,
            0.0,
            mode="ge",
            unit="rows/s",
            tolerance=tolerance,
        ),
    ]


QUICK_CASES: List[BenchCase] = [
    BenchCase(
        name="reduction",
        description=(
            "logical reduction ablation: exact vs greedy vs raw DNF "
            "(bench_reduction.py)"
        ),
        run=case_reduction,
    ),
    BenchCase(
        name="fig9_small",
        description=(
            "Figure 9(a) |A|=50: measured index costs vs c_s/c_e "
            "curves (bench_fig9.py)"
        ),
        run=case_fig9_small,
    ),
    BenchCase(
        name="table1_example",
        description=(
            "paper's worked example end-to-end: traced c_e equals the "
            "model prediction (bench_examples.py)"
        ),
        run=case_table1_example,
    ),
    BenchCase(
        name="cache_contention",
        description=(
            f"{CONTENTION_THREADS} threads hammering the shared "
            "reduction/compile caches under the lock sanitizer "
            "(tests/test_concurrency.py, docs/concurrency.md)"
        ),
        run=case_cache_contention,
    ),
    BenchCase(
        name="streaming_ingest",
        description=(
            f"{INGEST_BATCHES} WAL-logged append batches streaming "
            "into a saved database: ingest rows/sec, delta-merge "
            "bit-identity vs rebuild, recovery time "
            "(docs/robustness.md)"
        ),
        run=case_streaming_ingest,
    ),
]

FULL_CASES: List[BenchCase] = QUICK_CASES + [
    BenchCase(
        name="sparsity",
        description=(
            "Section 3.1 sparsity: (m-1)/m simple vs ~1/2 encoded "
            "(bench_sparsity.py)"
        ),
        run=case_sparsity,
    ),
    BenchCase(
        name="page_io",
        description=(
            "page-level Figure 9 + buffer-pool amortisation "
            "(bench_page_io.py)"
        ),
        run=case_page_io,
    ),
    BenchCase(
        name="worst_case",
        description=(
            "Section 3.2 area ratios and peak savings "
            "(bench_worst_case.py)"
        ),
        run=case_worst_case,
    ),
]


#: Row counts for the partition-parallel scan case per suite flavor.
PARALLEL_SMOKE_ROWS = 65_536
PARALLEL_FULL_ROWS = 1_048_576


def parallel_case(
    quick: bool,
    workers: Optional[Sequence[int]] = None,
    rows: Optional[int] = None,
) -> BenchCase:
    """Build the partition-parallel scan case for a suite flavor."""
    counts: Tuple[int, ...] = tuple(workers) if workers else (1, 4)
    n = (
        rows
        if rows is not None
        else (PARALLEL_SMOKE_ROWS if quick else PARALLEL_FULL_ROWS)
    )
    return BenchCase(
        name="parallel_scan_smoke" if quick else "parallel_scan_1m",
        description=(
            f"partition-parallel batched scan over {n} rows at "
            f"workers={list(counts)} vs the classic executor scan "
            "(docs/partitioning.md)"
        ),
        run=lambda tolerance: case_parallel_scan(
            tolerance, n=n, workers=counts
        ),
        workers=counts,
    )


def kernel_case(
    quick: bool,
    workers: Optional[Sequence[int]] = None,
    rows: Optional[int] = None,
) -> BenchCase:
    """Build the compiled-kernel ablation case for a suite flavor."""
    counts: Tuple[int, ...] = tuple(workers) if workers else (1, 4)
    n = (
        rows
        if rows is not None
        else (PARALLEL_SMOKE_ROWS if quick else PARALLEL_FULL_ROWS)
    )
    return BenchCase(
        name="kernel_eval_smoke" if quick else "kernel_eval_1m",
        description=(
            f"compiled retrieval kernels + reduction/compile caches vs "
            f"the legacy tree walk over {n} rows in "
            f"{KERNEL_PARTITIONS} partitions (docs/performance.md)"
        ),
        run=lambda tolerance: case_kernel_eval(
            tolerance, n=n, workers=counts
        ),
        workers=counts,
    )


def compression_case(
    quick: bool, rows: Optional[int] = None
) -> BenchCase:
    """Build the compression-frontier case for a suite flavor."""
    n = (
        rows
        if rows is not None
        else (PARALLEL_SMOKE_ROWS if quick else PARALLEL_FULL_ROWS)
    )
    return BenchCase(
        name="compression_smoke" if quick else "compression_1m",
        description=(
            f"row-reordering x word-aligned run compression frontier "
            f"over {n} rows: bytes, page reads and run-kernel wall "
            "time across "
            "{unordered, lex, gray, hist} (docs/compression.md)"
        ),
        run=lambda tolerance: case_compression(tolerance, n=n),
    )


#: Row counts for the serving case per suite flavor.  Small tables
#: keep per-query compute sub-millisecond, which is the serving
#: regime: fixed per-call overhead (thread-pool creation on the
#: thread baseline, IPC on the process pool) decides the ranking.
SERVING_SMOKE_ROWS = 20_480
SERVING_FULL_ROWS = 65_536


def serving_case(
    quick: bool, rows: Optional[int] = None
) -> BenchCase:
    """Build the serving-tier case for a suite flavor."""
    n = (
        rows
        if rows is not None
        else (SERVING_SMOKE_ROWS if quick else SERVING_FULL_ROWS)
    )
    return BenchCase(
        name="serving_smoke" if quick else "serving_64k",
        description=(
            f"query-serving tier over {n} rows: result-cache and "
            "process-pool throughput vs the uncached thread pool, "
            "bit-identity (rows and c_e), and served qps/p50/p99 "
            "under a zipf multi-tenant read/write workload "
            "(docs/serving.md)"
        ),
        run=lambda tolerance: case_serving(tolerance, rows=n),
    )


#: Row counts for the out-of-core scale case per suite flavor.  The
#: full flavor crosses 10M rows (the ISSUE scale target; stream it
#: with ``--rows`` for larger sweeps), the smoke flavor keeps CI under
#: a few seconds while still forcing spill/fault cycles.
SCALE_SMOKE_ROWS = 262_144
SCALE_FULL_ROWS = 10_485_760


def scale_case(quick: bool, rows: Optional[int] = None) -> BenchCase:
    """Build the out-of-core scale case for a suite flavor."""
    n = (
        rows
        if rows is not None
        else (SCALE_SMOKE_ROWS if quick else SCALE_FULL_ROWS)
    )
    return BenchCase(
        name="scale_smoke" if quick else "scale_10m",
        description=(
            f"out-of-core streaming scan over {n} rows in "
            f"{SCALE_PARTITIONS} partitions under a "
            f"{SCALE_BUDGET_FRACTION:.0%} plane-byte residency "
            "budget: spill/fault page accounting vs the Section 3 "
            "envelope, peak resident bytes, and bit-identity vs the "
            "fully-resident path (docs/out_of_core.md)"
        ),
        run=lambda tolerance: case_scale(tolerance, rows=n),
    )


def cases_for(
    quick: bool,
    workers: Optional[Sequence[int]] = None,
    rows: Optional[int] = None,
) -> List[BenchCase]:
    """The case list for a suite flavor.

    ``workers`` overrides the thread counts of the partition-parallel
    and kernel-ablation cases (CLI: ``repro bench --workers 1,4``);
    ``rows`` overrides the row count of every row-parameterised case
    (CLI: ``repro bench --rows 1000000``).
    """
    cases = list(QUICK_CASES if quick else FULL_CASES)
    cases.append(parallel_case(quick, workers, rows))
    cases.append(kernel_case(quick, workers, rows))
    cases.append(compression_case(quick, rows))
    cases.append(serving_case(quick, rows))
    cases.append(scale_case(quick, rows))
    return cases
