"""``repro.bench`` — the headless benchmark harness.

Wraps the measurement logic of the pytest benches under
``benchmarks/`` into self-contained cases, pairs every measurement
with the paper cost model's prediction, and records the lot (plus the
per-case metric snapshot from :mod:`repro.obs`) into versioned
``BENCH_*.json`` files.  Entry points: ``repro bench [--quick]`` on
the CLI or :func:`repro.bench.runner.run_suite` from code.  See
``docs/benchmarks.md``.
"""

from repro.bench.compare import Comparison, all_ok, compare, divergence
from repro.bench.cases import BenchCase, FULL_CASES, QUICK_CASES, cases_for
from repro.bench.runner import (
    CaseReport,
    SuiteReport,
    run_case,
    run_suite,
)
from repro.bench.schema import (
    COMPARISON_MODES,
    SCHEMA_VERSION,
    assert_valid,
    validate_payload,
)

__all__ = [
    "BenchCase",
    "CaseReport",
    "Comparison",
    "COMPARISON_MODES",
    "FULL_CASES",
    "QUICK_CASES",
    "SCHEMA_VERSION",
    "SuiteReport",
    "all_ok",
    "assert_valid",
    "cases_for",
    "compare",
    "divergence",
    "run_case",
    "run_suite",
    "validate_payload",
]
