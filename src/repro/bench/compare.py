"""Measured-vs-predicted comparison for the bench harness.

The paper's value is that its cost models *predict* what a real index
does; every bench case therefore pairs each measurement with the
model's number and one of four relation modes:

* ``eq``     — must match exactly (integer access counts),
* ``le``     — measured must not exceed the prediction (upper bounds
  such as ``c_e_worst``),
* ``ge``     — measured must reach the prediction (lower bounds),
* ``approx`` — relative divergence within the suite tolerance
  (aggregate or noisy quantities).

>>> compare("c_e", measured=1, predicted=1).ok
True
>>> compare("c_e", measured=3, predicted=2, mode="le").ok
False
>>> compare("ratio", 0.86, 0.84, mode="approx", tolerance=0.05).ok
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable

from repro.bench.schema import COMPARISON_MODES
from repro.errors import InvalidArgumentError


@dataclass(frozen=True)
class Comparison:
    """One measured-vs-predicted pairing and its verdict."""

    label: str
    measured: float
    predicted: float
    mode: str
    unit: str
    divergence: float
    ok: bool

    def describe(self) -> str:
        relation = {"eq": "==", "le": "<=", "ge": ">=", "approx": "~"}[
            self.mode
        ]
        status = "ok" if self.ok else "DIVERGENT"
        return (
            f"{self.label}: measured {self.measured:g} "
            f"{relation} predicted {self.predicted:g} {self.unit} "
            f"[{status}, divergence {self.divergence:.1%}]"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "unit": self.unit,
            "measured": self.measured,
            "predicted": self.predicted,
            "mode": self.mode,
            "divergence": self.divergence,
            "ok": self.ok,
        }


def divergence(measured: float, predicted: float) -> float:
    """Relative divergence of a measurement from its prediction."""
    scale = max(abs(predicted), 1.0)
    return abs(measured - predicted) / scale


def compare(
    label: str,
    measured: float,
    predicted: float,
    mode: str = "eq",
    unit: str = "accesses",
    tolerance: float = 0.25,
) -> Comparison:
    """Judge one measurement against its model prediction."""
    if mode not in COMPARISON_MODES:
        raise InvalidArgumentError(
            f"mode must be one of {COMPARISON_MODES}, got {mode!r}"
        )
    if tolerance < 0:
        raise InvalidArgumentError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    spread = divergence(measured, predicted)
    if mode == "eq":
        ok = measured == predicted
    elif mode == "le":
        ok = measured <= predicted
    elif mode == "ge":
        ok = measured >= predicted
    else:  # approx
        ok = spread <= tolerance
    return Comparison(
        label=label,
        measured=float(measured),
        predicted=float(predicted),
        mode=mode,
        unit=unit,
        divergence=spread,
        ok=ok,
    )


def all_ok(comparisons: Iterable[Comparison]) -> bool:
    """True when every comparison held."""
    return all(c.ok for c in comparisons)
