"""The versioned ``BENCH_*.json`` schema.

Every file the harness emits carries ``schema_version`` so downstream
consumers (CI's ``bench-smoke`` job, regression dashboards) can detect
incompatible layouts instead of silently misreading them.  Validation
is hand-rolled — the container has no ``jsonschema`` — and reports
*all* violations, not just the first.

Layout (version 3)::

    {
      "schema_version": 3,
      "suite": "smoke",
      "quick": true,
      "tolerance": 0.25,
      "ok": true,
      "cases": [
        {
          "name": "fig9_small",
          "description": "...",
          "wall_seconds": 0.012,
          "cpu_seconds": 0.011,
          "ok": true,
          "metrics": {"evaluator.vector_reads": 42, ...},
          "workers": [1, 4],          # optional: parallel cases only
          "latency_percentiles": {    # optional: serving cases only
            "p50_ms": 1.4,
            "p99_ms": 9.8
          },
          "tenants": [                # optional: serving cases only
            {
              "tenant": "tenant-0",
              "completed": 412,
              "failed": 3,
              "p50_ms": 1.3,
              "p99_ms": 10.2
            }
          ],
          "results": [
            {
              "label": "delta=8 measured c_s",
              "unit": "vectors",
              "measured": 8,
              "predicted": 8,
              "mode": "eq",
              "divergence": 0.0,
              "ok": true
            }
          ]
        }
      ]
    }

``mode`` states how ``measured`` relates to ``predicted``: exact
(``eq``), bounded (``le`` / ``ge``) or within relative tolerance
(``approx``).  See :mod:`repro.bench.compare` for the semantics and
``docs/benchmarks.md`` for the full contract.

Version history: version 2 added the optional per-case ``workers``
key — the thread counts a partition-parallel case ran with.  Version
3 added the optional serving-tier keys: ``latency_percentiles`` (a
string → milliseconds map for the case's overall latency quantiles)
and ``tenants`` (per-tenant accounting rows — tenant id, request
counts, latency quantiles).  Cases without them serialize exactly as
in earlier versions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

from repro.errors import BenchSchemaError

SCHEMA_VERSION = 3

COMPARISON_MODES = ("eq", "le", "ge", "approx")

_NUMBER: Tuple[type, ...] = (int, float)

_Spec = Dict[str, Union[type, Tuple[type, ...]]]

_TOP_LEVEL_KEYS: _Spec = {
    "schema_version": int,
    "suite": str,
    "quick": bool,
    "tolerance": _NUMBER,
    "ok": bool,
    "cases": list,
}

_CASE_KEYS: _Spec = {
    "name": str,
    "description": str,
    "wall_seconds": _NUMBER,
    "cpu_seconds": _NUMBER,
    "ok": bool,
    "metrics": dict,
    "results": list,
}

#: Keys a case may carry but need not (``workers`` since schema
#: version 2; ``latency_percentiles`` and ``tenants`` since 3).
_CASE_OPTIONAL_KEYS: _Spec = {
    "workers": list,
    "latency_percentiles": dict,
    "tenants": list,
}

_RESULT_KEYS: _Spec = {
    "label": str,
    "unit": str,
    "measured": _NUMBER,
    "predicted": _NUMBER,
    "mode": str,
    "divergence": _NUMBER,
    "ok": bool,
}


def _check_keys(
    obj: Dict[str, Any],
    spec: _Spec,
    where: str,
    problems: List[str],
    optional: Union[_Spec, None] = None,
) -> None:
    optional = optional or {}
    for key, expected in spec.items():
        if key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            continue
        _check_type(obj[key], expected, f"{where}.{key}", problems)
    for key, expected in optional.items():
        if key in obj:
            _check_type(obj[key], expected, f"{where}.{key}", problems)
    for key in obj:
        if key not in spec and key not in optional:
            problems.append(f"{where}: unknown key {key!r}")


def _check_type(
    value: Any,
    expected: Union[type, Tuple[type, ...]],
    where: str,
    problems: List[str],
) -> None:
    # bool is an int subclass; don't let it satisfy numeric slots.
    if expected is not bool and isinstance(value, bool):
        problems.append(f"{where}: expected {expected}, got bool")
        return
    if not isinstance(value, expected):
        problems.append(
            f"{where}: expected {expected}, "
            f"got {type(value).__name__}"
        )


def validate_payload(payload: Any) -> List[str]:
    """Return every schema violation in ``payload`` (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be an object, got {type(payload).__name__}"]
    _check_keys(payload, _TOP_LEVEL_KEYS, "payload", problems)
    version = payload.get("schema_version")
    if isinstance(version, int) and version != SCHEMA_VERSION:
        problems.append(
            f"payload.schema_version: expected {SCHEMA_VERSION}, "
            f"got {version}"
        )
    cases = payload.get("cases")
    if not isinstance(cases, list):
        return problems
    if not cases:
        problems.append("payload.cases: must contain at least one case")
    for i, case in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(case, dict):
            problems.append(f"{where}: expected object")
            continue
        _check_keys(
            case, _CASE_KEYS, where, problems,
            optional=_CASE_OPTIONAL_KEYS,
        )
        workers = case.get("workers")
        if isinstance(workers, list):
            if not workers:
                problems.append(f"{where}.workers: must not be empty")
            for j, count in enumerate(workers):
                if isinstance(count, bool) or not isinstance(
                    count, int
                ) or count < 1:
                    problems.append(
                        f"{where}.workers[{j}]: expected int >= 1"
                    )
        percentiles = case.get("latency_percentiles")
        if isinstance(percentiles, dict):
            if not percentiles:
                problems.append(
                    f"{where}.latency_percentiles: must not be empty"
                )
            for name, value in percentiles.items():
                if not isinstance(name, str):
                    problems.append(
                        f"{where}.latency_percentiles: non-string key"
                    )
                elif isinstance(value, bool) or not isinstance(
                    value, _NUMBER
                ):
                    problems.append(
                        f"{where}.latency_percentiles[{name!r}]: "
                        "expected number"
                    )
        tenants = case.get("tenants")
        if isinstance(tenants, list):
            if not tenants:
                problems.append(f"{where}.tenants: must not be empty")
            for j, tenant in enumerate(tenants):
                twhere = f"{where}.tenants[{j}]"
                if not isinstance(tenant, dict):
                    problems.append(f"{twhere}: expected object")
                    continue
                if not isinstance(tenant.get("tenant"), str):
                    problems.append(
                        f"{twhere}.tenant: expected string"
                    )
                for name, value in tenant.items():
                    if name == "tenant":
                        continue
                    if isinstance(value, bool) or not isinstance(
                        value, _NUMBER
                    ):
                        problems.append(
                            f"{twhere}[{name!r}]: expected number"
                        )
        metrics = case.get("metrics")
        if isinstance(metrics, dict):
            for name, value in metrics.items():
                if not isinstance(name, str):
                    problems.append(f"{where}.metrics: non-string key")
                elif isinstance(value, bool) or not isinstance(
                    value, _NUMBER
                ):
                    problems.append(
                        f"{where}.metrics[{name!r}]: expected number"
                    )
        results = case.get("results")
        if not isinstance(results, list):
            continue
        if not results:
            problems.append(f"{where}.results: must not be empty")
        for j, result in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere}: expected object")
                continue
            _check_keys(result, _RESULT_KEYS, rwhere, problems)
            mode = result.get("mode")
            if isinstance(mode, str) and mode not in COMPARISON_MODES:
                problems.append(
                    f"{rwhere}.mode: {mode!r} not in "
                    f"{COMPARISON_MODES}"
                )
    return problems


def assert_valid(payload: Any) -> None:
    """Raise :class:`~repro.errors.BenchSchemaError` when invalid."""
    problems = validate_payload(payload)
    if problems:
        raise BenchSchemaError(
            f"BENCH payload has {len(problems)} schema violation(s): "
            + "; ".join(problems[:5])
            + ("; ..." if len(problems) > 5 else ""),
            violations=problems,
        )
