"""ebilint — domain-aware static analysis for the reproduction.

The paper's correctness guarantees are structural: code 0 is reserved
for void tuples (Theorem 2.1), encodings must be well-defined w.r.t.
the predicate set (Definition 2.5), and every query is charged in
*distinct bitmap vectors accessed*.  The performance story is equally
structural: the word-packed :class:`~repro.bitmap.bitvector.BitVector`
design only pays off while hot paths stay on word-level numpy ops.

``ebilint`` turns those paper invariants and performance contracts
into machine-checked rules.  Run it as ``python -m repro.lint [paths]``
or ``python -m repro.cli lint [paths]``; see :mod:`repro.lint.rules_perf`
and :mod:`repro.lint.rules_paper` for the rule set and ``docs/lint.md``
for the rule-by-rule rationale.
"""

from __future__ import annotations

from repro.lint.core import (
    Finding,
    LintContext,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)
from repro.lint.runner import Report, lint_file, lint_paths, lint_source

# Importing the rule modules populates the registry.
from repro.lint import (  # noqa: E402,F401  (registry side effect)
    concurrency,
    rules_api,
    rules_paper,
    rules_perf,
    rules_robustness,
)

__all__ = [
    "Finding",
    "LintContext",
    "Report",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]
