"""File discovery and rule execution for ebilint."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.lint import baseline as baseline_mod
from repro.lint.concurrency.model import build_model
from repro.lint.core import (
    Finding,
    LintContext,
    ProgramRule,
    Rule,
    Severity,
    all_rules,
)
from repro.lint.suppress import Suppressions, parse_suppressions

#: Rule id reserved for files that fail to parse.
PARSE_ERROR_RULE = "EBI000"

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset(
    {".git", "__pycache__", ".mypy_cache", ".ruff_cache", ".pytest_cache"}
)


@dataclass(slots=True)
class Report:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [
            finding
            for finding in self.findings
            if finding.severity is Severity.ERROR
        ]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors or self.stale_baseline else 0


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name when ``path`` sits inside the repro package.

    ``.../src/repro/bitmap/ops.py`` -> ``repro.bitmap.ops``; files
    outside a ``repro`` package root (tests, examples, scripts) return
    ``None`` and are only subject to everywhere-scoped rules.
    """
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i > 0 and parts[i - 1] == "src":
            dotted = list(parts[i:-1]) + [path.stem]
            if path.stem == "__init__":
                dotted = dotted[:-1]
            return ".".join(dotted)
    return None


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif path.suffix == ".py":
            yield path


def selected_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Resolve ``--select``/``--ignore`` into the rule list to run."""
    rules = all_rules()
    if select:
        wanted = {rule_id.upper() for rule_id in select}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise KeyError(f"unknown rule ids: {sorted(unknown)}")
        rules = [rule for rule in rules if rule.id in wanted]
    if ignore:
        dropped = {rule_id.upper() for rule_id in ignore}
        rules = [rule for rule in rules if rule.id not in dropped]
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source text (the unit tests' entry point).

    Suppression pragmas are honoured; the baseline is not applied at
    this level.  Program rules (EBI3xx) run over a degenerate
    single-module model — enough for fixtures, while real runs build
    the model over every file via :func:`lint_paths`.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule=PARSE_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                severity=Severity.ERROR,
            )
        ]
    ctx = LintContext(path=path, source=source, tree=tree, module=module)
    suppressions = parse_suppressions(source)
    active = list(rules) if rules is not None else all_rules()
    findings: List[Finding] = []
    for rule in active:
        if isinstance(rule, ProgramRule) or not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if not suppressions.is_suppressed(finding):
                findings.append(finding)
    findings.extend(
        _run_program_rules(
            [rule for rule in active if isinstance(rule, ProgramRule)],
            [ctx],
            {ctx.path: suppressions},
        )
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _run_program_rules(
    program_rules: Sequence[ProgramRule],
    contexts: Sequence[LintContext],
    suppressions_by_path: dict[str, Suppressions],
) -> List[Finding]:
    """One whole-program pass; per-file suppressions still apply."""
    if not program_rules or not contexts:
        return []
    model = build_model(contexts)
    findings: List[Finding] = []
    for rule in program_rules:
        for finding in rule.check_program(model):
            suppressions = suppressions_by_path.get(finding.path)
            if suppressions is not None and suppressions.is_suppressed(
                finding
            ):
                continue
            findings.append(finding)
    return findings


def lint_file(
    path: Path, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    display = _display_path(path)
    return lint_source(
        source, path=display, module=module_name_for(path), rules=rules
    )


def _display_path(path: Path) -> str:
    """Repo-relative rendering so baselines are machine-independent."""
    try:
        return str(path.resolve().relative_to(Path.cwd().resolve()))
    except ValueError:
        return str(path)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline_path: Optional[Path] = None,
) -> Report:
    """Lint files/directories, applying the baseline when given.

    Per-file rules run file by file; program rules (EBI3xx) run once
    over a whole-program model of every parseable file in the run, so
    cross-module facts (worker reachability, lock order) are visible.
    """
    active = list(rules) if rules is not None else all_rules()
    file_rules = [
        rule for rule in active if not isinstance(rule, ProgramRule)
    ]
    program_rules = [
        rule for rule in active if isinstance(rule, ProgramRule)
    ]
    report = Report()
    contexts: List[LintContext] = []
    suppressions_by_path: dict[str, Suppressions] = {}
    for file_path in iter_python_files(paths):
        report.files_checked += 1
        report.findings.extend(lint_file(file_path, rules=file_rules))
        if not program_rules:
            continue
        source = file_path.read_text(encoding="utf-8")
        display = _display_path(file_path)
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError:
            continue  # already reported as EBI000 by lint_file
        contexts.append(
            LintContext(
                path=display,
                source=source,
                tree=tree,
                module=module_name_for(file_path),
            )
        )
        suppressions_by_path[display] = parse_suppressions(source)
    report.findings.extend(
        _run_program_rules(program_rules, contexts, suppressions_by_path)
    )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline_path is not None:
        known = baseline_mod.load_baseline(baseline_path)
        report.findings, report.stale_baseline = baseline_mod.apply_baseline(
            report.findings, known
        )
    return report
