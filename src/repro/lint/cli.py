"""Command-line entry point: ``python -m repro.lint [paths]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import textwrap

from repro.lint.baseline import DEFAULT_BASELINE, write_baseline
from repro.lint.core import all_rules, get_rule
from repro.lint.runner import lint_paths, selected_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "ebilint: check the paper's structural invariants "
            "(Theorem 2.1, Definition 2.5) and the word-packed "
            "performance contracts as static-analysis rules"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids",
    )
    parser.add_argument(
        "--ignore",
        nargs="+",
        metavar="RULE",
        help="skip these rule ids",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        nargs="+",
        metavar="RULE",
        help=(
            "print each rule's full description and paper/roadmap "
            "rationale, then exit"
        ),
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="print findings only, no summary line",
    )
    return parser


def _print_rule_catalogue() -> None:
    for rule in all_rules():
        print(f"{rule.id}  {rule.name}  [{rule.severity.value}]")
        print(f"    {rule.description}")
        if rule.rationale:
            print(f"    rationale: {rule.rationale}")


def _explain_rules(rule_ids: List[str]) -> None:
    for rule_id in rule_ids:
        rule = get_rule(rule_id.upper())
        print(f"{rule.id} — {rule.name} [{rule.severity.value}]")
        print(
            textwrap.fill(
                rule.description,
                width=72,
                initial_indent="  what: ",
                subsequent_indent="        ",
            )
        )
        if rule.rationale:
            print(
                textwrap.fill(
                    rule.rationale,
                    width=72,
                    initial_indent="  why:  ",
                    subsequent_indent="        ",
                )
            )
        print()


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() else None


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_catalogue()
        return 0

    if args.explain:
        try:
            _explain_rules(args.explain)
        except KeyError as exc:
            parser.error(str(exc))
        return 0

    try:
        rules = selected_rules(select=args.select, ignore=args.ignore)
    except KeyError as exc:
        parser.error(str(exc))

    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")

    if args.write_baseline:
        report = lint_paths(paths, rules=rules, baseline_path=None)
        target = Path(args.baseline or DEFAULT_BASELINE)
        write_baseline(target, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to baseline {target}"
        )
        return 0

    report = lint_paths(
        paths, rules=rules, baseline_path=_resolve_baseline(args)
    )
    for finding in report.findings:
        print(finding.render())
    for fingerprint in report.stale_baseline:
        print(
            "stale baseline entry (violation fixed — regenerate with "
            f"--write-baseline): {fingerprint}"
        )
    if not args.quiet:
        noun = "file" if report.files_checked == 1 else "files"
        print(
            f"ebilint: {report.files_checked} {noun} checked, "
            f"{len(report.findings)} finding(s), "
            f"{len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'}"
        )
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
