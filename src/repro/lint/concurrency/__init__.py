"""Whole-program concurrency-discipline analysis (EBI301–EBI304).

``model`` builds the cross-module program view (class tables, call
graph, lock summaries, worker reachability); ``rules`` registers the
four rule families on top of it.  See ``docs/concurrency.md`` for the
locking model these rules enforce.
"""

from __future__ import annotations

from repro.lint.concurrency.model import (
    ProgramModel,
    build_model,
    parse_ebi_tags,
)
from repro.lint.concurrency import rules  # noqa: F401  (registry)

__all__ = ["ProgramModel", "build_model", "parse_ebi_tags"]
