"""EBI301–EBI304: the concurrency-discipline rule family.

These are :class:`~repro.lint.core.ProgramRule` subclasses — they run
once per lint invocation over the whole-program
:class:`~repro.lint.concurrency.model.ProgramModel` rather than once
per file, because every property they enforce is cross-module: worker
reachability flows from ``ParallelExecutor`` through virtual calls
into the index layer, lock-order edges connect classes that never
import each other, and ``_data_version`` credit crosses method
boundaries.

Rule map (rationale details in ``docs/concurrency.md``):

* **EBI301** shared-state discipline — attributes mutated on
  worker-reachable paths must be lock-guarded, thread-local, or
  declared ``# ebi: shared-readonly`` (verified never written after
  construction).
* **EBI302** invalidation protocol — methods mutating versioned state
  must bump ``_data_version`` on every path (branch- and
  exception-aware); the version must be accessed under the same lock
  as the caches it keys; no foreign writes to another object's
  version.
* **EBI303** lock hygiene — no blocking I/O / pager traffic / metrics
  callbacks while holding a lock, no non-reentrant re-acquisition,
  and the global lock-order graph must be acyclic.
* **EBI304** accounting soundness — evaluator/kernel code must route
  plane reads through counted accessors so the measured ``c_e`` can
  never drift from real access counts.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.concurrency.model import (
    EFFECT_PAGER,
    LockId,
    MethodInfo,
    ProgramModel,
    VersionAccess,
)
from repro.lint.core import (
    Finding,
    ProgramRule,
    Severity,
    register_rule,
)

#: Accessor call names that count plane/bitmap reads (EBI304).
_COUNTED_ACCESSORS = frozenset({"record", "record_accesses", "merge"})

#: Subscripted containers treated as raw plane/bitmap storage.
_RAW_PLANE_NAMES = frozenset({"matrix", "_vectors", "planes"})


def _lock_label(lock: LockId) -> str:
    """``("repro.cache:LRUCache", "_lock")`` -> ``LRUCache._lock``."""
    owner = lock[0].rsplit(":", 1)[-1]
    return f"{owner}.{lock[1]}"


def _is_reentrant(model: ProgramModel, lock: LockId) -> bool:
    cls = model.classes.get(lock[0])
    if cls is None:
        return False
    info = cls.attrs.get(lock[1])
    return info is not None and info.reentrant


def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


# ----------------------------------------------------------------------
# EBI301 — shared-state discipline
# ----------------------------------------------------------------------
@register_rule
class SharedStateRule(ProgramRule):
    id = "EBI301"
    name = "shared-state-discipline"
    severity = Severity.ERROR
    description = (
        "attribute written on a worker-reachable path without a held "
        "lock, thread-local storage, or a verified shared-readonly "
        "declaration"
    )
    rationale = (
        "Theorem 2.1 well-definedness assumes retrieval reads a "
        "consistent mapping/vector state; ParallelExecutor workers "
        "share index instances, so an unguarded mutation can "
        "interleave with a plane scan and decode rows against the "
        "wrong encoding. Every shared write must be lock-guarded, "
        "confined to thread-local scratch, or on state the analyzer "
        "proves immutable after construction (# ebi: shared-readonly)."
    )

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        for method in model.all_methods():
            cls = method.cls
            if cls is None:
                continue
            in_init = method.name in cls.init_closure
            worker = (
                model.is_worker_reachable(method)
                and cls.qualname not in model.worker_constructed
            )
            worker_held = model.worker_held.get(
                method.qualname, frozenset()
            )
            for write in method.writes:
                attr = cls.find_attr(write.attr)
                if attr is not None and attr.shared_readonly:
                    if not in_init:
                        yield self.program_finding(
                            method.ctx,
                            write.node,
                            f"attribute {write.attr!r} is declared "
                            "# ebi: shared-readonly but is written in "
                            f"{method.name}(), outside construction",
                        )
                    continue
                if not worker or in_init:
                    continue
                if attr is not None and (
                    attr.is_lock or attr.thread_local
                ):
                    continue
                if write.held_locks or worker_held:
                    continue
                yield self.program_finding(
                    method.ctx,
                    write.node,
                    f"attribute {write.attr!r} written in "
                    f"{method.name}() on a worker-reachable path "
                    "without a held lock (guard with the instance "
                    "lock, make it thread-local, or declare it "
                    "# ebi: shared-readonly)",
                )


# ----------------------------------------------------------------------
# EBI302 — invalidation protocol
# ----------------------------------------------------------------------
class _DirtyWalker:
    """Branch/exception-aware walk: versioned mutation -> bump check.

    State is a single boolean — *dirty* means a versioned attribute
    has been mutated on the current path with no ``_data_version``
    bump yet.  ``Return``/``Raise`` while dirty, or falling off the
    end dirty, is a protocol violation.  A ``try`` whose ``finally``
    unconditionally bumps protects every path through its body.
    """

    def __init__(self, method: MethodInfo, versioned: Set[str]) -> None:
        self.method = method
        self.violations: List[Tuple[ast.AST, str]] = []
        self._suppress = 0
        self._mutation_nodes = {
            id(write.node): write.attr
            for write in method.writes
            if write.attr in versioned
        }

    # -- public --------------------------------------------------------
    def run(self) -> List[Tuple[ast.AST, str]]:
        node = self.method.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        dirty = self._walk_body(node.body, False)
        if dirty:
            self.violations.append(
                (
                    node,
                    f"{self.method.name}() mutates versioned state "
                    "but can fall through without bumping "
                    "_data_version",
                )
            )
        return self.violations

    # -- walk ----------------------------------------------------------
    def _walk_body(
        self, body: Sequence[ast.stmt], dirty: bool
    ) -> bool:
        for stmt in body:
            dirty = self._walk_stmt(stmt, dirty)
        return dirty

    def _walk_stmt(self, stmt: ast.stmt, dirty: bool) -> bool:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            dirty = dirty or self._mutates(stmt)
            if dirty:
                verb = (
                    "returns"
                    if isinstance(stmt, ast.Return)
                    else "raises"
                )
                self._report(
                    stmt,
                    f"{self.method.name}() {verb} after mutating "
                    "versioned state without bumping _data_version",
                )
            return dirty
        if isinstance(stmt, ast.If):
            then_dirty = self._walk_body(stmt.body, dirty)
            else_dirty = self._walk_body(stmt.orelse, dirty)
            return then_dirty or else_dirty
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            loop_dirty = self._walk_body(stmt.body, dirty)
            after = dirty or loop_dirty  # zero-or-more iterations
            return self._walk_body(stmt.orelse, after)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                if self._mutates(item.context_expr):
                    dirty = True
            return self._walk_body(stmt.body, dirty)
        if isinstance(stmt, ast.Try):
            protected = any(
                self._is_bump(s) for s in stmt.finalbody
            )
            if protected:
                self._suppress += 1
            body_dirty = self._walk_body(stmt.body, dirty)
            handler_dirty = False
            for handler in stmt.handlers:
                handler_dirty = (
                    self._walk_body(
                        handler.body, dirty or body_dirty
                    )
                    or handler_dirty
                )
            else_dirty = self._walk_body(stmt.orelse, body_dirty)
            if protected:
                self._suppress -= 1
            merged = body_dirty or handler_dirty or else_dirty
            merged = self._walk_body(stmt.finalbody, merged)
            if protected:
                return False
            return merged
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return dirty
        # Simple statement: mutation and/or bump.
        if self._mutates(stmt):
            dirty = True
        if self._is_bump(stmt):
            dirty = False
        elif self._is_dirtying_call(stmt):
            dirty = True
        return dirty

    # -- classification ------------------------------------------------
    def _mutates(self, node: ast.AST) -> bool:
        return any(
            id(sub) in self._mutation_nodes for sub in ast.walk(node)
        )

    def _is_bump(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.AugAssign):
            return self._is_version_target(stmt.target)
        if isinstance(stmt, ast.Assign):
            return any(
                self._is_version_target(t) for t in stmt.targets
            )
        if isinstance(stmt, ast.Expr):
            callee = self._self_callee(stmt.value)
            return (
                callee is not None
                and callee.version_effect == "bumps"
            )
        if isinstance(stmt, ast.With):
            return any(self._is_bump(s) for s in stmt.body)
        return False

    def _is_dirtying_call(self, stmt: ast.stmt) -> bool:
        if not isinstance(stmt, ast.Expr):
            return False
        callee = self._self_callee(stmt.value)
        return callee is not None and callee.version_effect == "dirties"

    def _self_callee(self, expr: ast.expr) -> Optional[MethodInfo]:
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if not (
            isinstance(func, ast.Attribute) and _is_self(func.value)
        ):
            return None
        cls = self.method.cls
        if cls is None:
            return None
        return cls.resolve_method(func.attr)

    @staticmethod
    def _is_version_target(target: ast.expr) -> bool:
        # Either epoch half discharges the obligation: ``_data_version``
        # for plane/mapping identity changes, ``_delta_seq`` for
        # arrival-order delta mutations (read fresh on every lookup,
        # so no cache can go stale).
        return (
            isinstance(target, ast.Attribute)
            and _is_self(target.value)
            and target.attr in ("_data_version", "_delta_seq")
        )

    def _report(self, node: ast.AST, message: str) -> None:
        if self._suppress:
            return
        self.violations.append((node, message))


@register_rule
class InvalidationProtocolRule(ProgramRule):
    id = "EBI302"
    name = "invalidation-protocol"
    severity = Severity.ERROR
    description = (
        "versioned state mutated without a _data_version bump on "
        "every path, or the version accessed outside the lock that "
        "guards its caches"
    )
    rationale = (
        "Derived artifacts (reduced retrieval functions, compiled "
        "kernels, plane snapshots) are cached keyed on _data_version; "
        "the paper's bit-identical c_e accounting and Theorem 2.1 "
        "retrieval correctness both break if a mutation escapes "
        "without a bump — the cache then serves results for a dead "
        "encoding. The bump must cover every branch and exception "
        "path, and version reads must share the cache's lock or the "
        "(version, value) pair can tear."
    )

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        for cls in model.classes.values():
            mro = cls.mro()
            all_attr_names = {
                name for ancestor in mro for name in ancestor.attrs
            }
            if "_data_version" not in all_attr_names:
                continue
            versioned = {
                name
                for ancestor in mro
                for name, attr in ancestor.attrs.items()
                if attr.versioned
            }
            has_lock = any(
                attr.is_lock
                for ancestor in mro
                for attr in ancestor.attrs.values()
            )
            for method in cls.methods.values():
                if method.name in cls.init_closure:
                    continue
                if versioned:
                    walker = _DirtyWalker(method, versioned)
                    for node, message in walker.run():
                        yield self.program_finding(
                            method.ctx, node, message
                        )
                if has_lock:
                    yield from self._unlocked_accesses(method)
        yield from self._foreign_writes(model)

    def _unlocked_accesses(
        self, method: MethodInfo
    ) -> Iterator[Finding]:
        for access in method.version_accesses:
            if access.held_locks:
                continue
            yield self.program_finding(
                method.ctx,
                access.node,
                self._unlocked_message(method, access),
            )

    @staticmethod
    def _unlocked_message(
        method: MethodInfo, access: VersionAccess
    ) -> str:
        kind = "written" if access.is_write else "read"
        return (
            f"_data_version {kind} in {method.name}() outside the "
            "instance lock; version and cached value must be "
            "accessed under the same lock"
        )

    def _foreign_writes(
        self, model: ProgramModel
    ) -> Iterator[Finding]:
        for method in model.all_methods():
            for node in ast.walk(method.node):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "_data_version"
                            and not _is_self(target.value)
                        ):
                            yield self.program_finding(
                                method.ctx,
                                target,
                                "foreign write to another object's "
                                "_data_version; invalidation must go "
                                "through a method of the owning "
                                "class so the bump shares its lock",
                            )


# ----------------------------------------------------------------------
# EBI303 — lock hygiene
# ----------------------------------------------------------------------
@register_rule
class LockHygieneRule(ProgramRule):
    id = "EBI303"
    name = "lock-hygiene"
    severity = Severity.ERROR
    description = (
        "blocking I/O, pager traffic, or metrics callbacks inside a "
        "held lock; non-reentrant re-acquisition; or a cycle in the "
        "lock-order graph"
    )
    rationale = (
        "The partition-parallel engine's speedup comes from workers "
        "overlapping pager I/O and kernel evaluation; any blocking "
        "call under a shared lock serialises the engine (and a "
        "metrics callback under a lock re-enters user code that may "
        "take other locks). The statically derived lock-order graph "
        "must be acyclic or two workers can deadlock."
    )

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        for method in model.all_methods():
            for acq in method.acquisitions:
                if acq.lock in acq.held_before and not _is_reentrant(
                    model, acq.lock
                ):
                    yield self.program_finding(
                        method.ctx,
                        acq.node,
                        f"re-acquisition of non-reentrant lock "
                        f"{_lock_label(acq.lock)} already held on "
                        "this path (self-deadlock)",
                    )
            for site in method.calls:
                if not site.held_locks:
                    continue
                targets = list(dict.fromkeys(site.targets))
                for target in targets:
                    for lock in sorted(
                        target.acquired_closure & site.held_locks
                    ):
                        if not _is_reentrant(model, lock):
                            yield self.program_finding(
                                method.ctx,
                                site.node,
                                f"call to {target.name}() "
                                "re-acquires non-reentrant lock "
                                f"{_lock_label(lock)} held at the "
                                "call site (self-deadlock)",
                            )
                effects: Set[str] = set(site.direct_effects)
                for target in targets:
                    effects |= target.effects
                lock_name = _lock_label(sorted(site.held_locks)[0])
                for effect in sorted(effects):
                    yield self.program_finding(
                        method.ctx,
                        site.node,
                        f"{effect} inside held lock {lock_name} in "
                        f"{method.name}(); move it outside the "
                        "critical section",
                    )
        yield from self._order_cycles(model)

    def _order_cycles(self, model: ProgramModel) -> Iterator[Finding]:
        graph: Dict[LockId, Set[LockId]] = {}
        for held, acquired in model.lock_edges:
            if held == acquired:
                continue  # re-acquisition is reported above
            graph.setdefault(held, set()).add(acquired)
        seen: Set[LockId] = set()
        reported: Set[Tuple[LockId, LockId]] = set()
        for root in sorted(graph):
            if root in seen:
                continue
            # Iterative DFS with an explicit on-path set.
            path: List[LockId] = []
            on_path: Set[LockId] = set()
            stack: List[Tuple[LockId, Optional[Iterator[LockId]]]] = [
                (root, None)
            ]
            while stack:
                lock, children = stack.pop()
                if children is None:
                    if lock in on_path:
                        continue
                    seen.add(lock)
                    path.append(lock)
                    on_path.add(lock)
                    children = iter(sorted(graph.get(lock, ())))
                advanced = False
                for child in children:
                    if child in on_path:
                        edge = (lock, child)
                        if edge not in reported:
                            reported.add(edge)
                            witness = model.lock_edges.get(edge)
                            if witness is not None:
                                method, node = witness
                                cycle = " -> ".join(
                                    _lock_label(item)
                                    for item in path[
                                        path.index(child) :
                                    ]
                                    + [child]
                                )
                                yield self.program_finding(
                                    method.ctx,
                                    node,
                                    "lock-order cycle: "
                                    f"{cycle} (acquired in "
                                    f"{method.name}())",
                                )
                        continue
                    stack.append((lock, children))
                    stack.append((child, None))
                    advanced = True
                    break
                if not advanced:
                    path.pop()
                    on_path.discard(lock)


# ----------------------------------------------------------------------
# EBI304 — accounting soundness
# ----------------------------------------------------------------------
@register_rule
class AccountingRule(ProgramRule):
    id = "EBI304"
    name = "accounting-soundness"
    severity = Severity.ERROR
    description = (
        "plane/bitmap access in evaluator or kernel code that "
        "bypasses the counted accessors"
    )
    rationale = (
        "The paper's cost model (Definition 2.5, Section 4) is "
        "validated by counting actual bitmap-vector accesses (c_e) "
        "and page reads; an evaluator path that indexes plane "
        "storage directly makes the measured cost drift silently "
        "from real access under refactors, invalidating every "
        "benchmark comparison against the paper's tables."
    )

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        callers = self._reverse_graph(model)
        memo: Dict[str, bool] = {}
        for method in model.all_methods():
            module = method.ctx.module or ""
            if module.startswith("repro.query"):
                yield from self._query_layer(method)
            if not (
                module.startswith("repro.kernels")
                or module == "repro.boolean.evaluator"
            ):
                continue
            if (
                "eval" not in method.name
                and method.name != "__call__"
            ):
                continue
            raw = self._raw_accesses(method)
            if not raw:
                continue
            if self._counted_context(
                method, callers, memo, set()
            ):
                continue
            yield self.program_finding(
                method.ctx,
                raw[0],
                f"{method.name}() indexes plane storage directly "
                "with no counted accessor on this path or any "
                "caller; route the read through AccessCounter",
            )

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _reverse_graph(
        model: ProgramModel,
    ) -> Dict[str, List[MethodInfo]]:
        callers: Dict[str, List[MethodInfo]] = {}
        for method in model.all_methods():
            for site in method.calls:
                for target in site.targets:
                    callers.setdefault(target.qualname, []).append(
                        method
                    )
        return callers

    @staticmethod
    def _raw_accesses(method: MethodInfo) -> List[ast.AST]:
        raw: List[ast.AST] = []
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Subscript):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            base = node.value
            name: Optional[str] = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name in _RAW_PLANE_NAMES:
                raw.append(node)
        return raw

    @classmethod
    def _is_counted(cls, method: MethodInfo) -> bool:
        node = method.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = {arg.arg for arg in node.args.args}
        params.update(arg.arg for arg in node.args.kwonlyargs)
        if "counter" in params:
            return True
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _COUNTED_ACCESSORS
                ):
                    return True
        return False

    def _counted_context(
        self,
        method: MethodInfo,
        callers: Dict[str, List[MethodInfo]],
        memo: Dict[str, bool],
        visiting: Set[str],
    ) -> bool:
        """Counted itself, or every known caller is counted."""
        if method.qualname in memo:
            return memo[method.qualname]
        if method.qualname in visiting:
            return True  # cycle: co-inductively assume counted
        visiting.add(method.qualname)
        if self._is_counted(method):
            result = True
        else:
            ups = callers.get(method.qualname, [])
            result = bool(ups) and all(
                self._counted_context(up, callers, memo, visiting)
                for up in ups
            )
        visiting.discard(method.qualname)
        memo[method.qualname] = result
        return result

    def _query_layer(self, method: MethodInfo) -> Iterator[Finding]:
        for site in method.calls:
            func = site.node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "vector"
            ):
                yield self.program_finding(
                    method.ctx,
                    site.node,
                    "raw .vector() fetch in the query layer "
                    "bypasses access counting; use the index's "
                    "counted lookup path",
                )


__all__ = [
    "SharedStateRule",
    "InvalidationProtocolRule",
    "LockHygieneRule",
    "AccountingRule",
    "EFFECT_PAGER",
]
