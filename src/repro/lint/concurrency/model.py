"""Whole-program model for the concurrency-discipline rules.

The EBI3xx family (:mod:`repro.lint.concurrency.rules`) reasons about
facts no single-file AST pass can see: which methods run on worker
threads, which attribute writes race with them, which locks are held
at a call site three frames away.  This module builds the shared
substrate once per lint run:

* **class tables** — every class in the linted files, its base
  classes (resolved across modules), its attributes as assigned in
  ``__init__``-reachable code, and the ``# ebi:`` annotations on them
  (``shared-readonly``, ``versioned``, ``thread-local``);
* **method summaries** — per method/function: self-attribute
  mutations with the lexically held locks at each, lock acquisitions
  (``with self._lock:``), resolved outgoing calls, and direct
  blocking/pager/metrics effects;
* **a call graph** — self-calls resolve through the MRO *and* subclass
  overrides (virtual dispatch); receivers are typed from parameter
  annotations, local ``x = ClassName(...)`` assignments and the
  ``__init__`` attribute-type table; unresolved ``x.m()`` calls fall
  back to every known implementer of ``m`` (capped, and skipped for
  ubiquitous names like ``get``/``append``);
* **worker reachability** — a BFS from worker entry points
  (``pool.submit(self.m, ...)`` / ``Thread(target=...)`` targets and
  methods annotated ``# ebi: worker-entry``), tracking which locks are
  guaranteed held on *every* path into each method;
* **fixpoints** — transitive effect sets (for lock-hygiene checks),
  transitive lock-acquisition sets (for the lock-order graph) and
  always-bumps-``_data_version`` summaries (for the invalidation
  protocol).

The model is deliberately a *lightweight* abstraction: flow-sensitive
within a method (held locks, local types, local aliases of ``self``
attributes), context-insensitive across calls.  Its precision knobs —
the mutator-name table, the virtual-dispatch cap, the common-name
blacklist — are tuned so that on this repository every finding is
actionable; ``docs/concurrency.md`` documents the residual blind
spots.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.core import LintContext

#: ``# ebi: tag-a, tag-b`` trailing-comment annotations.
_EBI_TAG = re.compile(r"#\s*ebi:\s*(?P<tags>[a-z][a-z0-9,\s-]*)")

#: Annotation tags the model understands.
TAG_SHARED_READONLY = "shared-readonly"
TAG_VERSIONED = "versioned"
TAG_THREAD_LOCAL = "thread-local"
TAG_WORKER_ENTRY = "worker-entry"
TAG_PROCESS_ENTRY = "process-entry"

#: Method names treated as mutating their receiver when called as
#: ``self.attr.<name>(...)`` (or on a local alias of ``self.attr``).
MUTATOR_NAMES: FrozenSet[str] = frozenset(
    {
        "add",
        "add_value",
        "append",
        "assign",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "record",
        "remove",
        "resize",
        "setdefault",
        "sort",
        "update",
    }
)

#: ``x.m()`` names never resolved by the any-implementer fallback —
#: they are defined by half the classes in any codebase, so fanning
#: out to every implementer would connect unrelated subsystems.
VIRTUAL_FALLBACK_BLACKLIST: FrozenSet[str] = frozenset(
    {
        "add",
        "append",
        "clear",
        "close",
        "copy",
        "count",
        "decode",
        "encode",
        "extend",
        "get",
        "index",
        "inc",
        "insert",
        "items",
        "join",
        "keys",
        "matches",
        "pop",
        "put",
        "read",
        "record",
        "remove",
        "render",
        "reset",
        "set",
        "snapshot",
        "sort",
        "split",
        "strip",
        "update",
        "values",
        "write",
    }
)

#: Max implementers the virtual-dispatch fallback will fan out to.
VIRTUAL_FALLBACK_CAP = 8

# Effect kinds for lock-hygiene (EBI303).
EFFECT_IO = "blocking I/O"
EFFECT_PAGER = "pager I/O"
EFFECT_METRICS = "metrics-registry callback"
EFFECT_BLOCKING = "thread blocking"

#: Bare / attribute call names that ARE a blocking-I/O effect.
_IO_CALL_NAMES: FrozenSet[str] = frozenset(
    {
        "open",
        "print",
        "input",
        "makedirs",
        "replace",
        "unlink",
        "rmdir",
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "sleep",
    }
)

#: Method names that count as pager traffic when invoked on a
#: pager-ish receiver (``self.pager.read(...)``, ``store.load(...)``).
_PAGER_CALL_NAMES: FrozenSet[str] = frozenset(
    {"read", "write", "allocate", "load", "store", "fetch", "flush"}
)
_PAGER_RECEIVER_HINTS: FrozenSet[str] = frozenset(
    {"pager", "_store", "store", "pool", "_pool", "buffer_pool"}
)


def parse_ebi_tags(line: str) -> FrozenSet[str]:
    """The ``# ebi:`` tags on one source line (empty set if none)."""
    match = _EBI_TAG.search(line)
    if match is None:
        return frozenset()
    return frozenset(
        part.strip()
        for part in match.group("tags").split(",")
        if part.strip()
    )


# ----------------------------------------------------------------------
# data model
# ----------------------------------------------------------------------
#: A lock's identity: (qualname of the class defining it, attr name).
LockId = Tuple[str, str]


@dataclass(slots=True)
class AttrInfo:
    """One instance attribute of one class."""

    name: str
    shared_readonly: bool = False
    versioned: bool = False
    thread_local: bool = False
    is_lock: bool = False
    reentrant: bool = False
    #: Simple class name inferred from ``self.x = ClassName(...)``.
    type_name: Optional[str] = None


@dataclass(slots=True)
class AttrWrite:
    """One mutation of a ``self`` attribute inside a method."""

    attr: str
    node: ast.AST
    held_locks: FrozenSet[LockId]
    #: ``assign`` | ``subscript`` | ``mutating-call`` | ``delete``
    kind: str


@dataclass(slots=True)
class Acquisition:
    """One ``with self.<lock>:`` block."""

    lock: LockId
    node: ast.AST
    held_before: FrozenSet[LockId]


@dataclass(slots=True)
class CallSite:
    """One outgoing call, with its lexical lock context."""

    node: ast.Call
    held_locks: FrozenSet[LockId]
    #: Resolved callee summaries (possibly several — virtual dispatch).
    targets: List["MethodInfo"] = field(default_factory=list)
    #: Direct effects of the call expression itself (no resolution).
    direct_effects: FrozenSet[str] = frozenset()
    #: Simple class name when this call constructs an instance.
    constructs: Optional[str] = None


@dataclass(slots=True)
class VersionAccess:
    """A read or write of an epoch counter.

    Covers ``self._data_version``/``_planes_version`` and the delta
    tier's ``self._delta_seq`` (the second half of an index epoch).
    """

    node: ast.AST
    held_locks: FrozenSet[LockId]
    is_write: bool


@dataclass
class MethodInfo:
    """Summary of one function or method."""

    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    ctx: LintContext
    cls: Optional["ClassInfo"] = None
    writes: List[AttrWrite] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    version_accesses: List[VersionAccess] = field(default_factory=list)
    worker_entry: bool = False
    #: ``# ebi: process-entry``: the function is submitted to a
    #: *process* pool.  Spawned workers share no memory with the
    #: parent's threads, so the thread-shared-state analysis must not
    #: treat the submit target as a thread worker entry.
    process_entry: bool = False
    #: Effects computed by the transitive fixpoint.
    effects: Set[str] = field(default_factory=set)
    #: Locks acquired here or in any (transitive) callee.
    acquired_closure: Set[LockId] = field(default_factory=set)
    #: EBI302 summary: ``bumps`` | ``dirties`` | ``none``.
    version_effect: str = "none"

    def __hash__(self) -> int:
        return hash(self.qualname)


@dataclass
class ClassInfo:
    """One class with its resolved bases and attribute table."""

    qualname: str  # "<module>:<ClassName>"
    name: str
    node: ast.ClassDef
    ctx: LintContext
    base_names: List[str] = field(default_factory=list)
    bases: List["ClassInfo"] = field(default_factory=list)
    subclasses: List["ClassInfo"] = field(default_factory=list)
    methods: Dict[str, MethodInfo] = field(default_factory=dict)
    attrs: Dict[str, AttrInfo] = field(default_factory=dict)
    #: Methods reachable from ``__init__`` by self-calls (their writes
    #: are construction, not shared-state mutation).
    init_closure: Set[str] = field(default_factory=set)

    def __hash__(self) -> int:
        return hash(self.qualname)

    def mro(self) -> List["ClassInfo"]:
        """Linearised own-then-bases order (cycle-safe)."""
        seen: Set[str] = set()
        order: List[ClassInfo] = []

        def visit(cls: "ClassInfo") -> None:
            if cls.qualname in seen:
                return
            seen.add(cls.qualname)
            order.append(cls)
            for base in cls.bases:
                visit(base)

        visit(self)
        return order

    def find_attr(self, name: str) -> Optional[AttrInfo]:
        for cls in self.mro():
            if name in cls.attrs:
                return cls.attrs[name]
        return None

    def find_lock_owner(self, attr: str) -> Optional[LockId]:
        """The defining class of a lock attribute, as a lock id."""
        for cls in self.mro():
            info = cls.attrs.get(attr)
            if info is not None and info.is_lock:
                return (cls.qualname, attr)
        return None

    def resolve_method(self, name: str) -> Optional[MethodInfo]:
        for cls in self.mro():
            if name in cls.methods:
                return cls.methods[name]
        return None

    def virtual_targets(self, name: str) -> List[MethodInfo]:
        """MRO resolution plus every subclass override."""
        targets: List[MethodInfo] = []
        base = self.resolve_method(name)
        if base is not None:
            targets.append(base)
        stack = list(self.subclasses)
        seen: Set[str] = {self.qualname}
        while stack:
            sub = stack.pop()
            if sub.qualname in seen:
                continue
            seen.add(sub.qualname)
            if name in sub.methods:
                targets.append(sub.methods[name])
            stack.extend(sub.subclasses)
        return targets


@dataclass
class ProgramModel:
    """The built whole-program view consumed by the EBI3xx rules."""

    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Simple class name -> every ClassInfo with that name.
    classes_by_name: Dict[str, List[ClassInfo]] = field(
        default_factory=dict
    )
    #: Module-level functions, "<module>:<name>" -> summary.
    functions: Dict[str, MethodInfo] = field(default_factory=dict)
    #: Function simple name -> definitions (cross-module call fallback
    #: for imported names like ``compile_function``).
    functions_by_name: Dict[str, List[MethodInfo]] = field(
        default_factory=dict
    )
    #: Method name -> implementing methods (virtual fallback table).
    methods_by_name: Dict[str, List[MethodInfo]] = field(
        default_factory=dict
    )
    #: Worker-reachable methods -> locks held on EVERY path into them.
    worker_held: Dict[str, FrozenSet[LockId]] = field(
        default_factory=dict
    )
    worker_entries: List[MethodInfo] = field(default_factory=list)
    #: Classes instantiated inside worker-reachable code: their
    #: instances are worker-private, so self-writes are thread-local.
    worker_constructed: Set[str] = field(default_factory=set)
    #: Lock-order edges: (held, acquired) -> a witness call/with node.
    lock_edges: Dict[
        Tuple[LockId, LockId], Tuple[MethodInfo, ast.AST]
    ] = field(default_factory=dict)

    def all_methods(self) -> Iterator[MethodInfo]:
        for cls in self.classes.values():
            yield from cls.methods.values()
        yield from self.functions.values()

    def is_worker_reachable(self, method: MethodInfo) -> bool:
        return method.qualname in self.worker_held

    def resolve_class_name(
        self, name: str, ctx_module: Optional[str]
    ) -> Optional[ClassInfo]:
        """A class by simple name; same-module definitions win."""
        candidates = self.classes_by_name.get(name, [])
        if not candidates:
            return None
        if ctx_module is not None:
            for cls in candidates:
                if cls.qualname.startswith(ctx_module + ":"):
                    return cls
        return candidates[0]


# ----------------------------------------------------------------------
# per-method summarisation
# ----------------------------------------------------------------------
class _MethodWalker:
    """Flow walker for one method: lock context, writes, calls."""

    def __init__(
        self,
        info: MethodInfo,
        lock_attrs: FrozenSet[str],
        cls: Optional[ClassInfo],
    ) -> None:
        self.info = info
        self.lock_attrs = lock_attrs
        self.cls = cls
        #: local name -> self attribute it aliases.
        self.aliases: Dict[str, str] = {}
        #: local name -> simple class name.
        self.local_types: Dict[str, str] = {}

    # -- entry ---------------------------------------------------------
    def walk(self) -> None:
        node = self.info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            if arg.annotation is not None:
                type_name = _annotation_name(arg.annotation)
                if type_name is not None:
                    self.local_types[arg.arg] = type_name
        self._walk_body(node.body, frozenset())

    # -- statements ----------------------------------------------------
    def _walk_body(
        self, body: Sequence[ast.stmt], held: FrozenSet[LockId]
    ) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: FrozenSet[LockId]) -> None:
        if isinstance(stmt, ast.With):
            inner = held
            for item in stmt.items:
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    self.info.acquisitions.append(
                        Acquisition(
                            lock=lock,
                            node=item.context_expr,
                            held_before=inner,
                        )
                    )
                    inner = inner | {lock}
                else:
                    self._scan_expr(item.context_expr, held)
            self._walk_body(stmt.body, inner)
            return
        if isinstance(
            stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)
        ):
            self._scan_stmt_exprs(stmt, held)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._track_loop_alias(stmt)
            self._walk_body(stmt.body, held)
            self._walk_body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._walk_body(stmt.body, held)
            for handler in stmt.handlers:
                self._walk_body(handler.body, held)
            self._walk_body(stmt.orelse, held)
            self._walk_body(stmt.finalbody, held)
            return
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # Nested defs: scan for effects/calls but with no lock
            # context claims (they run later, elsewhere).
            return
        self._scan_stmt_exprs(stmt, held)

    def _scan_stmt_exprs(
        self, stmt: ast.stmt, held: FrozenSet[LockId]
    ) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_store(target, held)
            self._track_alias_assign(stmt)
            self._scan_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._record_store(stmt.target, held)
            self._scan_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._record_store(stmt.target, held)
            if stmt.value is not None:
                self._scan_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_store(target, held, kind="delete")
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, held)

    # -- alias / type tracking ----------------------------------------
    def _track_alias_assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(
            stmt.targets[0], ast.Name
        ):
            return
        name = stmt.targets[0].id
        attr = _self_attr(stmt.value)
        if attr is not None:
            self.aliases[name] = attr
            return
        if isinstance(stmt.value, ast.Call):
            ctor = _constructed_name(stmt.value)
            if ctor is not None:
                self.local_types[name] = ctor

    def _track_loop_alias(self, stmt: ast.For | ast.AsyncFor) -> None:
        """``for v in self.attr:`` / ``for i, v in enumerate(self.attr)``."""
        source = stmt.iter
        if isinstance(source, ast.Call) and _callee_name(source) in (
            "enumerate",
            "reversed",
            "sorted",
        ):
            if source.args:
                source = source.args[0]
        attr = _self_attr(source)
        if attr is None:
            return
        target = stmt.target
        if isinstance(target, ast.Tuple) and target.elts:
            target = target.elts[-1]
        if isinstance(target, ast.Name):
            self.aliases[target.id] = attr

    # -- stores --------------------------------------------------------
    def _record_store(
        self,
        target: ast.expr,
        held: FrozenSet[LockId],
        kind: str = "assign",
    ) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._add_write(attr, target, held, kind)
            return
        if isinstance(target, ast.Subscript):
            base_attr = _self_attr(target.value)
            if base_attr is None and isinstance(target.value, ast.Name):
                base_attr = self.aliases.get(target.value.id)
            if base_attr is not None:
                self._add_write(base_attr, target, held, "subscript")
            return
        if isinstance(target, ast.Attribute):
            # ``self.attr.sub = v`` mutates self.attr's referent.
            base_attr = _self_attr(target.value)
            if base_attr is not None:
                self._add_write(base_attr, target, held, "assign")
            return
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._record_store(elt, held, kind)

    def _add_write(
        self,
        attr: str,
        node: ast.AST,
        held: FrozenSet[LockId],
        kind: str,
    ) -> None:
        self.info.writes.append(
            AttrWrite(attr=attr, node=node, held_locks=held, kind=kind)
        )
        if attr in ("_data_version", "_planes_version", "_delta_seq"):
            # Store targets never pass through ``_scan_expr`` (it only
            # walks value expressions), so record the version write
            # here for the cache-under-lock check.
            self.info.version_accesses.append(
                VersionAccess(node=node, held_locks=held, is_write=True)
            )

    # -- expressions / calls ------------------------------------------
    def _scan_expr(self, expr: ast.expr, held: FrozenSet[LockId]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._record_call(node, held)
            elif isinstance(node, ast.Attribute):
                self._record_version_access(node, held)

    def _record_call(
        self, call: ast.Call, held: FrozenSet[LockId]
    ) -> None:
        # Mutating method call on a self attribute or an alias of one.
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_NAMES:
            base_attr = _self_attr(func.value)
            if base_attr is None and isinstance(func.value, ast.Name):
                base_attr = self.aliases.get(func.value.id)
            if base_attr is not None:
                self._add_write(base_attr, call, held, "mutating-call")
        site = CallSite(
            node=call,
            held_locks=held,
            direct_effects=frozenset(self._direct_effects(call)),
            constructs=_constructed_name(call),
        )
        self.info.calls.append(site)

    def _record_version_access(
        self, node: ast.Attribute, held: FrozenSet[LockId]
    ) -> None:
        if node.attr not in (
            "_data_version", "_planes_version", "_delta_seq"
        ):
            return
        if not _is_self(node.value):
            return
        self.info.version_accesses.append(
            VersionAccess(
                node=node,
                held_locks=held,
                is_write=isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ),
            )
        )

    def _direct_effects(self, call: ast.Call) -> Set[str]:
        effects: Set[str] = set()
        name = _callee_name(call)
        if name is None:
            return effects
        receiver = (
            call.func.value
            if isinstance(call.func, ast.Attribute)
            else None
        )
        if name in ("get_registry", "use_registry"):
            effects.add(EFFECT_METRICS)
        if name in _IO_CALL_NAMES:
            # ``"sep".join`` style false positives: skip effects whose
            # receiver is a literal.
            if not isinstance(receiver, ast.Constant):
                effects.add(EFFECT_IO)
        if name in ("result", "join") and receiver is not None:
            if not isinstance(receiver, ast.Constant) and not call.args:
                effects.add(EFFECT_BLOCKING)
        if name in _PAGER_CALL_NAMES and receiver is not None:
            hint = None
            if isinstance(receiver, ast.Attribute):
                hint = receiver.attr
            elif isinstance(receiver, ast.Name):
                hint = receiver.id
            if hint in _PAGER_RECEIVER_HINTS:
                effects.add(EFFECT_PAGER)
        return effects

    # -- locks ---------------------------------------------------------
    def _lock_of(self, expr: ast.expr) -> Optional[LockId]:
        attr = _self_attr(expr)
        if attr is None or attr not in self.lock_attrs:
            return None
        if self.cls is not None:
            owner = self.cls.find_lock_owner(attr)
            if owner is not None:
                return owner
            return (self.cls.qualname, attr)
        return ("<module>", attr)


# ----------------------------------------------------------------------
# small AST helpers
# ----------------------------------------------------------------------
def _is_self(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.x`` -> ``"x"`` (one level only)."""
    if isinstance(node, ast.Attribute) and _is_self(node.value):
        return node.attr
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _constructed_name(call: ast.Call) -> Optional[str]:
    """``ClassName(...)`` -> ``"ClassName"`` (CamelCase heuristic)."""
    if isinstance(call.func, ast.Name):
        name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
    else:
        return None
    if name[:1].isupper() and not name.isupper():
        return name
    return None


def _annotation_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip('"')
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        if base == "Optional":
            return _annotation_name(node.slice)
        return base
    return None


def _is_lock_ctor(node: ast.expr) -> Tuple[bool, bool]:
    """(is a Lock constructor, is reentrant)."""
    if not isinstance(node, ast.Call):
        return (False, False)
    name = _callee_name(node)
    if name == "RLock":
        return (True, True)
    if name == "Lock":
        return (True, False)
    return (False, False)


def _is_thread_local_ctor(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and _callee_name(node) == "local"


# ----------------------------------------------------------------------
# model construction
# ----------------------------------------------------------------------
def build_model(contexts: Sequence[LintContext]) -> ProgramModel:
    """Build the whole-program model over the given parsed files.

    Files with no derivable module name (tests, scripts) are excluded:
    the EBI3xx contracts govern the ``repro`` package, and including
    test helpers would seed the worker-entry scan with every thread a
    test spawns.
    """
    model = ProgramModel()
    package_ctxs = [ctx for ctx in contexts if ctx.module is not None]

    # Pass 1: declare classes and module functions.
    for ctx in package_ctxs:
        module = ctx.module or "<anonymous>"
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{module}:{node.name}",
                    name=node.name,
                    node=node,
                    ctx=ctx,
                    base_names=[
                        base_name
                        for base in node.bases
                        if (base_name := _annotation_name(base))
                        is not None
                    ],
                )
                model.classes[cls.qualname] = cls
                model.classes_by_name.setdefault(cls.name, []).append(
                    cls
                )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                info = MethodInfo(
                    qualname=f"{module}:{node.name}",
                    name=node.name,
                    node=node,
                    ctx=ctx,
                )
                info.worker_entry = _has_tag(
                    ctx, node, TAG_WORKER_ENTRY
                )
                info.process_entry = _has_tag(
                    ctx, node, TAG_PROCESS_ENTRY
                )
                model.functions[info.qualname] = info
                model.functions_by_name.setdefault(
                    info.name, []
                ).append(info)

    # Pass 2: resolve bases, collect methods and attribute tables.
    for cls in model.classes.values():
        for base_name in cls.base_names:
            base = model.resolve_class_name(
                base_name, cls.ctx.module
            )
            if base is not None and base is not cls:
                cls.bases.append(base)
                base.subclasses.append(cls)
        for node in cls.node.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                info = MethodInfo(
                    qualname=f"{cls.qualname}.{node.name}",
                    name=node.name,
                    node=node,
                    ctx=cls.ctx,
                    cls=cls,
                )
                info.worker_entry = _has_tag(
                    cls.ctx, node, TAG_WORKER_ENTRY
                )
                info.process_entry = _has_tag(
                    cls.ctx, node, TAG_PROCESS_ENTRY
                )
                cls.methods[node.name] = info
        _collect_attrs(cls)

    for cls in model.classes.values():
        _compute_init_closure(cls)

    # Pass 3: per-method walk (needs the full lock-attr table, which
    # includes inherited locks — hence after pass 2).
    for cls in model.classes.values():
        lock_attrs = frozenset(
            name
            for ancestor in cls.mro()
            for name, attr in ancestor.attrs.items()
            if attr.is_lock
        )
        for info in cls.methods.values():
            _MethodWalker(info, lock_attrs, cls).walk()
    for info in model.functions.values():
        _MethodWalker(info, frozenset(), None).walk()

    for info in model.all_methods():
        model.methods_by_name.setdefault(info.name, []).append(info)

    # Pass 4: resolve calls, then run the global analyses.
    for info in model.all_methods():
        _resolve_calls(model, info)
    _detect_worker_entries(model)
    _compute_worker_reachability(model)
    _compute_effects(model)
    _compute_acquired_closures(model)
    _compute_lock_edges(model)
    _compute_version_effects(model)
    return model


def _has_tag(
    ctx: LintContext, node: ast.AST, tag: str
) -> bool:
    lineno = getattr(node, "lineno", 0)
    return tag in parse_ebi_tags(ctx.source_line(lineno))


def _collect_attrs(cls: ClassInfo) -> None:
    """Attribute table from every ``self.x = ...`` in the class body.

    Annotation tags are read from the assignment's own source line;
    type/lock/thread-local classification comes from the assigned
    expression.
    """
    for method in cls.methods.values():
        node = method.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                attr_name = _self_attr(target)
                if attr_name is None:
                    continue
                info = cls.attrs.setdefault(
                    attr_name, AttrInfo(name=attr_name)
                )
                tags = parse_ebi_tags(
                    cls.ctx.source_line(stmt.lineno)
                )
                if TAG_SHARED_READONLY in tags:
                    info.shared_readonly = True
                if TAG_VERSIONED in tags:
                    info.versioned = True
                if TAG_THREAD_LOCAL in tags:
                    info.thread_local = True
                if value is not None:
                    is_lock, reentrant = _is_lock_ctor(value)
                    if is_lock:
                        info.is_lock = True
                        info.reentrant = reentrant
                    if _is_thread_local_ctor(value):
                        info.thread_local = True
                    if (
                        isinstance(value, ast.Call)
                        and info.type_name is None
                    ):
                        info.type_name = _constructed_name(value)
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and info.type_name is None
                ):
                    info.type_name = _annotation_name(stmt.annotation)


def _compute_init_closure(cls: ClassInfo) -> None:
    """Methods reachable from ``__init__`` through self-calls."""
    closure: Set[str] = set()
    stack = [
        name
        for name in cls.methods
        if name == "__init__" or name.startswith("_init")
    ]
    while stack:
        name = stack.pop()
        if name in closure:
            continue
        closure.add(name)
        method = cls.methods.get(name)
        if method is None:
            continue
        for node in ast.walk(method.node):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and _is_self(func.value)
                    and func.attr in cls.methods
                ):
                    stack.append(func.attr)
    cls.init_closure = closure


def _resolve_calls(model: ProgramModel, info: MethodInfo) -> None:
    module = info.ctx.module
    walker_types: Dict[str, str] = {}
    # Re-derive local types cheaply: parameter annotations and
    # ``x = ClassName(...)`` assigns (the walker tracked them during
    # summarisation but summaries don't persist locals; this re-walk
    # keeps CallSite resolution self-contained).
    node = info.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for arg in list(node.args.args) + list(node.args.kwonlyargs):
        if arg.annotation is not None:
            type_name = _annotation_name(arg.annotation)
            if type_name is not None:
                walker_types[arg.arg] = type_name
    for stmt in ast.walk(node):
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
        ):
            ctor = _constructed_name(stmt.value)
            if ctor is not None:
                walker_types[stmt.targets[0].id] = ctor

    for site in info.calls:
        call = site.node
        func = call.func
        targets: List[MethodInfo] = []
        if isinstance(func, ast.Name):
            name = func.id
            cls = model.resolve_class_name(name, module)
            if cls is not None:
                # Constructor: dispatch to __init__ for reachability.
                ctor = cls.resolve_method("__init__")
                if ctor is not None:
                    targets.append(ctor)
            else:
                fn = model.functions.get(f"{module}:{name}")
                if fn is not None:
                    targets.append(fn)
                else:
                    # Imported module-level function: resolve by the
                    # bare name when unambiguous enough.
                    candidates = model.functions_by_name.get(name, [])
                    if 0 < len(candidates) <= 3:
                        targets.extend(candidates)
        elif isinstance(func, ast.Attribute):
            method_name = func.attr
            receiver = func.value
            if _is_self(receiver) and info.cls is not None:
                targets.extend(
                    info.cls.virtual_targets(method_name)
                )
            elif (
                isinstance(receiver, ast.Call)
                and _callee_name(receiver) == "super"
                and info.cls is not None
            ):
                for base in info.cls.bases:
                    resolved = base.resolve_method(method_name)
                    if resolved is not None:
                        targets.append(resolved)
                        break
            else:
                recv_type: Optional[str] = None
                if isinstance(receiver, ast.Name):
                    recv_type = walker_types.get(receiver.id)
                    if recv_type is None:
                        cls = model.resolve_class_name(
                            receiver.id, module
                        )
                        if cls is not None:
                            # ``ClassName.method(...)``
                            recv_type = cls.name
                attr = (
                    _self_attr(receiver)
                    if isinstance(receiver, ast.Attribute)
                    else None
                )
                if (
                    recv_type is None
                    and attr is not None
                    and info.cls is not None
                ):
                    attr_info = info.cls.find_attr(attr)
                    if attr_info is not None:
                        recv_type = attr_info.type_name
                if recv_type is not None:
                    cls = model.resolve_class_name(recv_type, module)
                    if cls is not None:
                        targets.extend(
                            cls.virtual_targets(method_name)
                        )
                if not targets:
                    targets.extend(
                        _virtual_fallback(model, method_name)
                    )
        site.targets = targets


def _virtual_fallback(
    model: ProgramModel, method_name: str
) -> List[MethodInfo]:
    if method_name in VIRTUAL_FALLBACK_BLACKLIST:
        return []
    if method_name.startswith("__"):
        return []
    implementers = [
        m
        for m in model.methods_by_name.get(method_name, [])
        if m.cls is not None
    ]
    if not implementers or len(implementers) > VIRTUAL_FALLBACK_CAP:
        return []
    return implementers


def _detect_worker_entries(model: ProgramModel) -> None:
    """``pool.submit(self.m, ...)`` / ``Thread(target=...)`` targets."""
    for info in model.all_methods():
        for site in info.calls:
            call = site.node
            name = _callee_name(call)
            if name == "submit" and call.args:
                target = call.args[0]
                attr = _self_attr(target)
                if attr is not None and info.cls is not None:
                    resolved = info.cls.resolve_method(attr)
                    if resolved is not None and not resolved.process_entry:
                        resolved.worker_entry = True
                elif isinstance(target, ast.Name):
                    fn = model.functions.get(
                        f"{info.ctx.module}:{target.id}"
                    )
                    if fn is not None and not fn.process_entry:
                        fn.worker_entry = True
            elif name == "Thread":
                for kw in call.keywords:
                    if kw.arg != "target":
                        continue
                    attr = _self_attr(kw.value)
                    if attr is not None and info.cls is not None:
                        resolved = info.cls.resolve_method(attr)
                        if resolved is not None:
                            resolved.worker_entry = True
                    elif isinstance(kw.value, ast.Name):
                        fn = model.functions.get(
                            f"{info.ctx.module}:{kw.value.id}"
                        )
                        if fn is not None:
                            fn.worker_entry = True


def _compute_worker_reachability(model: ProgramModel) -> None:
    """BFS from worker entries, intersecting held locks per method.

    ``worker_held[m]`` ends as the set of locks provably held on every
    worker path into ``m`` — the guard credit EBI301 gives to methods
    only ever called under a lock.
    """
    entries = [m for m in model.all_methods() if m.worker_entry]
    model.worker_entries = entries
    held: Dict[str, FrozenSet[LockId]] = {}
    worklist: List[Tuple[MethodInfo, FrozenSet[LockId]]] = [
        (entry, frozenset()) for entry in entries
    ]
    while worklist:
        method, incoming = worklist.pop()
        known = held.get(method.qualname)
        if known is not None:
            merged = known & incoming
            if merged == known:
                continue
            held[method.qualname] = merged
            incoming = merged
        else:
            held[method.qualname] = incoming
        for site in method.calls:
            out = incoming | site.held_locks
            for target in site.targets:
                worklist.append((target, out))
    model.worker_held = held

    constructed: Set[str] = set()
    for info in model.all_methods():
        if info.qualname not in held:
            continue
        for site in info.calls:
            if site.constructs is not None:
                cls = model.resolve_class_name(
                    site.constructs, info.ctx.module
                )
                if cls is not None:
                    constructed.add(cls.qualname)
    model.worker_constructed = constructed


def _compute_effects(model: ProgramModel) -> None:
    for info in model.all_methods():
        info.effects = set()
        for site in info.calls:
            info.effects |= site.direct_effects
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for info in model.all_methods():
            for site in info.calls:
                for target in site.targets:
                    new = target.effects - info.effects
                    if new:
                        info.effects |= new
                        changed = True


def _compute_acquired_closures(model: ProgramModel) -> None:
    for info in model.all_methods():
        info.acquired_closure = {
            acq.lock for acq in info.acquisitions
        }
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for info in model.all_methods():
            for site in info.calls:
                for target in site.targets:
                    new = (
                        target.acquired_closure
                        - info.acquired_closure
                    )
                    if new:
                        info.acquired_closure |= new
                        changed = True


def _compute_lock_edges(model: ProgramModel) -> None:
    for info in model.all_methods():
        for acq in info.acquisitions:
            for held in acq.held_before:
                key = (held, acq.lock)
                model.lock_edges.setdefault(key, (info, acq.node))
        for site in info.calls:
            if not site.held_locks:
                continue
            for target in site.targets:
                for lock in target.acquired_closure:
                    for held in site.held_locks:
                        key = (held, lock)
                        model.lock_edges.setdefault(
                            key, (info, site.node)
                        )


def _compute_version_effects(model: ProgramModel) -> None:
    """``bumps`` / ``dirties`` / ``none`` summaries, to fixpoint.

    A method *bumps* when every path through it increments
    ``self._data_version`` (directly or via an always-bumping
    self-call); it *dirties* when it mutates a versioned attribute
    somewhere without being an unconditional bumper.
    """
    for cls in model.classes.values():
        versioned = {
            name
            for ancestor in cls.mro()
            for name, attr in ancestor.attrs.items()
            if attr.versioned
        }
        if "_data_version" not in {
            name
            for ancestor in cls.mro()
            for name in ancestor.attrs
        }:
            continue
        for method in cls.methods.values():
            if _mutates_versioned(method, versioned):
                method.version_effect = "dirties"
    changed = True
    iterations = 0
    while changed and iterations < 20:
        changed = False
        iterations += 1
        for cls in model.classes.values():
            for method in cls.methods.values():
                if method.version_effect == "bumps":
                    continue
                if _always_bumps(method):
                    method.version_effect = "bumps"
                    changed = True


def _mutates_versioned(
    method: MethodInfo, versioned: Set[str]
) -> bool:
    return any(w.attr in versioned for w in method.writes)


def _always_bumps(method: MethodInfo) -> bool:
    """Does every fall-through path bump the version?

    Conservative: a straight-line scan of the top-level body — a bump
    statement (or an always-bumping self-call) not inside any branch,
    with no ``return`` before it, makes the method an unconditional
    bumper.  (Branch-aware per-path analysis lives in the EBI302 rule
    itself; this summary only feeds call-site credit.)
    """
    node = method.node
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    for stmt in node.body:
        if _stmt_bumps(stmt, method):
            return True
        # Any return reachable before the bump (including one nested
        # in a branch) means some path skips it.
        if any(isinstance(n, ast.Return) for n in ast.walk(stmt)):
            return False
    return False


def _stmt_bumps(stmt: ast.stmt, method: MethodInfo) -> bool:
    # ``_delta_seq`` is the delta tier's epoch half: bumping it marks
    # a mutation that the next lookup reads directly (the delta is
    # never cached), so it satisfies the protocol like a
    # ``_data_version`` bump does.
    if isinstance(stmt, ast.AugAssign):
        return _self_attr(stmt.target) in ("_data_version", "_delta_seq")
    if isinstance(stmt, ast.Assign):
        return any(
            _self_attr(t) in ("_data_version", "_delta_seq")
            for t in stmt.targets
        )
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and _is_self(func.value):
            cls = method.cls
            if cls is not None:
                callee = cls.resolve_method(func.attr)
                if (
                    callee is not None
                    and callee.version_effect == "bumps"
                ):
                    return True
    if isinstance(stmt, ast.With):
        return any(_stmt_bumps(s, method) for s in stmt.body)
    if isinstance(stmt, ast.Try):
        if any(_stmt_bumps(s, method) for s in stmt.finalbody):
            return True
        return False
    return False
