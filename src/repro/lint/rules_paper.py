"""Paper-invariant rules (EBI2xx).

Each rule machine-checks a structural guarantee the paper proves or
assumes: the void code reservation (Theorem 2.1), well-definedness of
constructed encodings (Definition 2.5), disciplined construction of
retrieval expressions, and the absence of shared mutable defaults that
would let one query's state leak into another's.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import (
    Finding,
    LintContext,
    Rule,
    call_name,
    call_qualifier,
    is_int_literal,
    register_rule,
)

#: Names that legitimately carry code 0 (Theorem 2.1 sentinel).
_VOID_NAMES = frozenset({"VOID", "NULL"})


def _names_sentinel(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _VOID_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _VOID_NAMES
    return False


def _keyword_value(node: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


@register_rule
class VoidCodeZeroRule(Rule):
    """EBI201: code 0 belongs to VOID, never to a real value.

    Theorem 2.1: reserving code 0 for non-existing tuples lets every
    selection on existing tuples drop the existence conjunct.  A
    mapping literal that hands code 0 to a real domain value while
    void handling is enabled silently re-introduces phantom rows.
    """

    id = "EBI201"
    name = "void-code-zero"
    description = (
        "code 0 assigned to a non-VOID value; Theorem 2.1 reserves "
        "code 0 for the void sentinel"
    )
    rationale = (
        "Theorem 2.1: with code 0 reserved for VOID, selections on "
        "existing tuples need no existence filter."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "assign" and len(node.args) == 2:
                value_arg, code_arg = node.args
                if is_int_literal(code_arg, 0) and not _names_sentinel(
                    value_arg
                ):
                    yield self.finding(ctx, node)
            elif name == "from_pairs":
                yield from self._check_from_pairs(ctx, node)

    def _check_from_pairs(
        self, ctx: LintContext, node: ast.Call
    ) -> Iterator[Finding]:
        reserve = _keyword_value(node, "reserve_void_zero")
        if not (isinstance(reserve, ast.Constant) and reserve.value is True):
            return
        if not node.args:
            return
        pairs = node.args[0]
        if not isinstance(pairs, (ast.List, ast.Tuple)):
            return
        for element in pairs.elts:
            if (
                isinstance(element, (ast.Tuple, ast.List))
                and len(element.elts) == 2
                and is_int_literal(element.elts[1], 0)
                and not _names_sentinel(element.elts[0])
            ):
                yield self.finding(
                    ctx,
                    element,
                    "mapping literal assigns code 0 to a real value while "
                    "reserve_void_zero=True (Theorem 2.1)",
                )


#: Modules holding the primitive mapping/checker machinery themselves.
_ENCODING_PRIMITIVE_MODULES = frozenset(
    {
        "repro.encoding.mapping",
        "repro.encoding.well_defined",
        "repro.encoding.distance",
        "repro.encoding.chain",
        "repro.encoding.gray",
    }
)

_CHECKER_NAMES = frozenset(
    {"check_mapping", "is_well_defined", "verify_well_defined_cost"}
)


@register_rule
class UncheckedEncodingRule(Rule):
    """EBI202: encoding constructors validate before returning.

    Definition 2.5 ties the cost guarantees to the encoding being
    well-defined; at minimum every constructor must run the structural
    checker (:func:`repro.encoding.well_defined.check_mapping`) on the
    mapping it hands out, so a buggy search can never leak an
    inconsistent or void-violating table into an index.
    """

    id = "EBI202"
    name = "unchecked-encoding"
    description = (
        "encoding constructor returns a MappingTable without calling "
        "the well-definedness checker (check_mapping)"
    )
    rationale = (
        "Definition 2.5 / Theorem 2.2: the access-cost guarantees only "
        "hold for well-defined encodings; constructors must validate."
    )

    def applies(self, ctx: LintContext) -> bool:
        return (
            ctx.in_package("repro.encoding")
            and ctx.module not in _ENCODING_PRIMITIVE_MODULES
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if not self._returns_mapping_table(node):
                continue
            if not self._calls_checker(node):
                yield self.finding(
                    ctx,
                    node,
                    f"encoding constructor {node.name}() returns a "
                    "MappingTable without calling check_mapping()",
                )

    @staticmethod
    def _returns_mapping_table(node: ast.AST) -> bool:
        annotation = getattr(node, "returns", None)
        if isinstance(annotation, ast.Name):
            return annotation.id == "MappingTable"
        if isinstance(annotation, ast.Constant):
            return annotation.value == "MappingTable"
        if isinstance(annotation, ast.Attribute):
            return annotation.attr == "MappingTable"
        return False

    @staticmethod
    def _calls_checker(node: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Call) and call_name(sub) in _CHECKER_NAMES
            for sub in ast.walk(node)
        )


_RAW_NODE_NAMES = frozenset({"And", "Or", "Xor"})


@register_rule
class RawExpressionRule(Rule):
    """EBI203: build expressions via the ``expr`` factory helpers.

    ``And((Var(0), Var(1)))`` hard-codes the operand-tuple layout of
    the AST dataclasses.  Outside :mod:`repro.boolean` itself, client
    code must use the factories (``and_``, ``or_``, ``xor_``) or the
    operator overloads, which normalise operands and keep call sites
    stable if the node layout changes.
    """

    id = "EBI203"
    name = "raw-expression-node"
    description = (
        "Expression node built from a raw operand tuple; use the "
        "expr factory helpers (and_/or_/xor_) or operators instead"
    )
    rationale = (
        "API contract: retrieval expressions are constructed through "
        "the factory layer so operand normalisation stays centralised."
    )

    def applies(self, ctx: LintContext) -> bool:
        return (
            ctx.module is not None
            and ctx.in_package("repro")
            and not ctx.in_package("repro.boolean")
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _RAW_NODE_NAMES
                and len(node.args) == 1
                and isinstance(node.args[0], (ast.Tuple, ast.List))
            ):
                yield self.finding(ctx, node)


_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)


def _is_mutable_default(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        qualifier = call_qualifier(node)
        return (
            name in _MUTABLE_FACTORIES
            and (qualifier is None or qualifier == "collections")
        )
    return False


@register_rule
class MutableDefaultRule(Rule):
    """EBI204: no mutable default arguments anywhere.

    A shared default ``[]``/``{}`` makes state leak across calls —
    for query evaluation that means one query's accesses polluting the
    next query's cost accounting.  Use ``None`` plus an in-body
    default, or ``dataclasses.field(default_factory=...)``.
    """

    id = "EBI204"
    name = "mutable-default-argument"
    description = (
        "mutable default argument; use None (or field(default_factory))"
        " and create the value per call"
    )
    rationale = (
        "Correctness contract: evaluation state (counters, caches) is "
        "per-call; a shared default aliases it across queries."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            arguments = node.args
            for default in list(arguments.defaults) + [
                kw for kw in arguments.kw_defaults if kw is not None
            ]:
                if _is_mutable_default(default):
                    yield self.finding(ctx, default)
