"""Performance-contract rules (EBI1xx).

These enforce the structural assumptions behind the word-packed
bitmap design: hot paths must stay on word-level numpy operations
(one op per 64 bits), must not allocate fresh vectors per loop
iteration, and must keep every vector read visible to the paper's
cost accounting (distinct bitmap vectors accessed).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.core import (
    Finding,
    LintContext,
    Rule,
    call_name,
    call_qualifier,
    identifiers_in,
    register_rule,
)

#: Identifiers that denote a *bit length* — looping ``range()`` over one
#: of these is a per-bit scan of the vector.
_BIT_LENGTH_NAMES = frozenset(
    {"nbits", "_nbits", "n_bits", "num_bits", "bit_count", "bitlen"}
)


def _mentions_bit_length(node: ast.AST) -> bool:
    return any(name in _BIT_LENGTH_NAMES for name in identifiers_in(node))


@register_rule
class BitLoopRule(Rule):
    """EBI101: no per-bit Python loops in word-packed hot paths.

    A ``for j in range(nbits)`` (or a ``while`` stepping a bit index up
    to ``nbits``) inside ``repro.bitmap`` or the expression evaluator
    defeats the 64-bits-per-op design the WAH-style compression
    literature assumes; such scans must be expressed as word-level
    numpy operations (skip zero words, extract set bits per word).
    """

    id = "EBI101"
    name = "per-bit-loop"
    description = (
        "per-bit loop over bit indices in a word-packed hot path; "
        "use word-level numpy ops instead"
    )
    rationale = (
        "Performance contract: bitmap kernels operate on 64-bit words, "
        "not individual bits (Section 3 cost model counts vector "
        "accesses, assuming word-parallel logical ops)."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro.bitmap") or ctx.module == (
            "repro.boolean.evaluator"
        )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterator = node.iter
                if (
                    isinstance(iterator, ast.Call)
                    and isinstance(iterator.func, ast.Name)
                    and iterator.func.id == "range"
                    and any(_mentions_bit_length(arg) for arg in iterator.args)
                ):
                    yield self.finding(ctx, node)
            elif isinstance(node, ast.While):
                if isinstance(node.test, ast.Compare) and _mentions_bit_length(
                    node.test
                ):
                    yield self.finding(ctx, node)


#: BitVector classmethod constructors that allocate a fresh vector.
_VECTOR_CONSTRUCTORS = frozenset(
    {"ones", "zeros", "from_bools", "from_indices", "from_mask"}
)

#: Query-evaluation hot paths where per-iteration vector allocation is
#: a measurable regression (one fresh numpy array per loop pass).
_HOT_PATH_MODULES = frozenset(
    {
        "repro.boolean.evaluator",
        "repro.query.executor",
        "repro.index.encoded_bitmap",
        "repro.index.paged",
    }
)


def _is_vector_allocation(node: ast.Call) -> bool:
    if isinstance(node.func, ast.Name):
        return node.func.id == "BitVector"
    return (
        call_qualifier(node) == "BitVector"
        and call_name(node) in _VECTOR_CONSTRUCTORS
    )


@register_rule
class AllocInLoopRule(Rule):
    """EBI102: no ``BitVector`` construction inside hot-path loops.

    Evaluator/executor loops run once per DNF term or plan operand;
    allocating a vector per iteration turns an O(terms) pass into
    O(terms) array allocations.  Hoist the allocation before the loop
    and combine in place (``&=``/``|=``).
    """

    id = "EBI102"
    name = "vector-alloc-in-loop"
    description = (
        "BitVector allocated inside a query-evaluation loop; hoist the "
        "allocation out of the loop and combine in place"
    )
    rationale = (
        "Performance contract: result vectors are allocated once per "
        "evaluation, not once per term/operand iteration."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.module in _HOT_PATH_MODULES

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, ast.Call)
                    and _is_vector_allocation(sub)
                    and id(sub) not in seen
                    and not self._in_nested_function(node, sub)
                ):
                    seen.add(id(sub))
                    yield self.finding(ctx, sub)

    @staticmethod
    def _in_nested_function(loop: ast.AST, call: ast.Call) -> bool:
        """Is ``call`` inside a def/lambda nested within ``loop``?

        Such code runs per *invocation*, not per loop iteration.
        """
        for node in ast.walk(loop):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                for sub in ast.walk(node):
                    if sub is call:
                        return True
        return False


@register_rule
class SlowPopcountRule(Rule):
    """EBI104: use ``int.bit_count()``, not ``bin(x).count("1")``.

    Popcounts sit on the inner loops of Hamming-distance, chain-search
    and implicant machinery; the string round-trip allocates a str per
    call and is ~5x slower than the native ``bit_count`` available
    since Python 3.10 (the floor ``pyproject.toml`` declares).
    """

    id = "EBI104"
    name = "slow-popcount"
    description = (
        'bin(x).count("1") popcount; use x.bit_count() '
        "(native, no string allocation)"
    )
    rationale = (
        "Performance contract: distance/chain kernels run popcount per "
        "code pair; the string formatting dominates their cost."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node) == "count"
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "bin"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "1"
            ):
                yield self.finding(ctx, node)


#: Identifiers that (by project convention) bind ``BitVector`` values.
_VECTORISH_NAMES = frozenset(
    {
        "vector",
        "vec",
        "bv",
        "bitvector",
        "bit_vector",
        "bitmap",
        "term_vector",
        "literal",
    }
)

#: In-place spellings for the binary ops that would otherwise build a
#: throwaway ``BitVector`` (``__iand__``/``__ior__``/``__ixor__`` all
#: run ``np.bitwise_*(..., out=...)``; ``&~`` has ``iandnot``).
_INPLACE_SPELLING = {
    ast.BitAnd: "&=",
    ast.BitOr: "|=",
    ast.BitXor: "^=",
}


def _vectorish(node: ast.AST) -> bool:
    """Does this expression *look like* a BitVector by naming convention?"""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return False
    return name in _VECTORISH_NAMES or name.endswith(("_vector", "_vec"))


def _binding_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return ast.dump(node)
    return ""


@register_rule
class BitVectorLoopRule(Rule):
    """EBI105: bit-at-a-time BitVector use inside ``src/repro`` loops.

    Two shapes defeat the word-packed design anywhere in the library
    (tests and docs lint with ``module=None`` and are exempt):

    * iterating a ``BitVector`` directly (``for bit in vector`` or
      ``for j in range(len(vector))``) — a per-*bit* Python loop over
      data stored 64 bits per word; use :meth:`BitVector.iter_set_bits`,
      :meth:`~BitVector.indices` or a word-level numpy op instead;
    * rebinding ``x = x & y`` / ``| y`` / ``^ y`` inside a loop body —
      each pass allocates a fresh vector although an in-place ``out=``
      variant (``&=``, ``|=``, ``^=``) exists.
    """

    id = "EBI105"
    name = "bitvector-per-bit-loop"
    description = (
        "bit-at-a-time BitVector use in a loop; iterate set bits / "
        "use the in-place out= operator variant instead"
    )
    rationale = (
        "Performance contract: compiled kernels and evaluators touch "
        "64 bits per operation; per-bit Python iteration or a fresh "
        "vector per loop pass forfeits that factor."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        seen: Set[int] = set()
        for loop in ast.walk(ctx.tree):
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(ctx, loop)
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for sub in ast.walk(loop):
                if (
                    isinstance(sub, ast.Assign)
                    and id(sub) not in seen
                    and not AllocInLoopRule._in_nested_function(loop, sub)
                ):
                    finding = self._check_rebinding(ctx, sub)
                    if finding is not None:
                        seen.add(id(sub))
                        yield finding

    def _check_iteration(
        self, ctx: LintContext, loop: ast.For
    ) -> Iterator[Finding]:
        iterator = loop.iter
        if _vectorish(iterator):
            yield self.finding(
                ctx,
                loop,
                "per-bit iteration over a BitVector; use "
                "iter_set_bits()/indices() or word-level numpy ops",
            )
            return
        # for j in range(len(vector)): ...
        if (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
        ):
            for arg in iterator.args:
                if (
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Name)
                    and arg.func.id == "len"
                    and arg.args
                    and _vectorish(arg.args[0])
                ):
                    yield self.finding(
                        ctx,
                        loop,
                        "per-bit index loop over a BitVector length; "
                        "use iter_set_bits()/indices() or word-level "
                        "numpy ops",
                    )

    def _check_rebinding(
        self, ctx: LintContext, assign: ast.Assign
    ) -> Optional[Finding]:
        value = assign.value
        if not isinstance(value, ast.BinOp):
            return None
        spelling = _INPLACE_SPELLING.get(type(value.op))
        if spelling is None:
            return None
        if len(assign.targets) != 1:
            return None
        target = _binding_name(assign.targets[0])
        if not target or target != _binding_name(value.left):
            return None
        if not (_vectorish(assign.targets[0]) or _vectorish(value.left)):
            return None
        return self.finding(
            ctx,
            assign,
            f"BitVector temporary rebuilt every iteration; use the "
            f"in-place '{spelling}' (out=) variant",
        )


_EVALUATOR_ENTRYPOINTS = frozenset({"evaluate_dnf", "evaluate_expression"})


@register_rule
class UncountedEvalRule(Rule):
    """EBI103: evaluator calls must flow through the AccessCounter.

    The paper charges every query in distinct bitmap vectors accessed
    (Section 3, footnote 4).  Index and query modules calling the
    evaluator without passing a counter silently drop reads from the
    measured ``c_e``/``c_s``.
    """

    id = "EBI103"
    name = "uncounted-evaluation"
    description = (
        "evaluator called without an AccessCounter; vector reads "
        "would escape the paper's cost accounting"
    )
    rationale = (
        "Cost-accounting contract: every vector fetched during query "
        "evaluation is recorded as one access (Section 3 cost unit)."
    )

    #: Position of the ``counter`` parameter in the evaluator API.
    _COUNTER_ARG_POSITION = 3

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro.index", "repro.query")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) not in _EVALUATOR_ENTRYPOINTS:
                continue
            has_positional = len(node.args) > self._COUNTER_ARG_POSITION
            has_keyword = any(
                keyword.arg == "counter" for keyword in node.keywords
            )
            if not has_positional and not has_keyword:
                yield self.finding(ctx, node)


#: Decompression entry points a run iterator replaces.
_DECOMPRESS_METHODS = frozenset({"to_bitvector", "to_words"})

#: Substrings that mark a receiver as a run-compressed bitmap.
_RUNNISH_FRAGMENTS = ("compressed", "wah", "rle")

#: Whole identifier tokens that mark the same (substring matching
#: would drag in ``prune``/``truncate``-style names).
_RUNNISH_TOKENS = frozenset({"run", "runs"})


def _runnish(name: str) -> bool:
    lowered = name.lower()
    if any(fragment in lowered for fragment in _RUNNISH_FRAGMENTS):
        return True
    return any(
        token in _RUNNISH_TOKENS for token in lowered.split("_")
    )


def _receiver_name(call: ast.Call) -> str:
    """The name of the object a method call decompresses."""
    if not isinstance(call.func, ast.Attribute):
        return ""
    receiver = call.func.value
    if isinstance(receiver, ast.Name):
        return receiver.id
    if isinstance(receiver, ast.Attribute):
        return receiver.attr
    if isinstance(receiver, ast.Call):
        return call_name(receiver) or ""
    return ""


@register_rule
class RunDecompressLoopRule(Rule):
    """EBI106: whole-vector decompression inside a ``src/repro`` loop.

    Calling ``to_bitvector()`` / ``to_words()`` on a run-compressed
    bitmap (``RunLengthBitmap``, ``WordAlignedBitmap``,
    ``CompressedPlaneSet`` planes) inside a loop inflates every
    iteration to O(n) bits, forfeiting exactly the compression the
    reorder pass bought (docs/compression.md).  Logical work belongs
    on the runs themselves: segment-merge operators (``&``, ``|``),
    ``runs`` / ``segments`` iteration, or one materialisation hoisted
    out of the loop.
    """

    id = "EBI106"
    name = "run-decompress-in-loop"
    description = (
        "run-compressed bitmap decompressed inside a loop; operate "
        "on the runs (segment merge / run iteration) or hoist the "
        "one materialisation out of the loop"
    )
    rationale = (
        "Performance contract: run kernels cost O(segments) per "
        "vector; a per-iteration decompress rebuilds O(n) bits every "
        "pass and defeats word-aligned compression."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        seen: Set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for sub in ast.walk(loop):
                if (
                    isinstance(sub, ast.Call)
                    and id(sub) not in seen
                    and call_name(sub) in _DECOMPRESS_METHODS
                    and _runnish(_receiver_name(sub))
                ):
                    seen.add(id(sub))
                    yield self.finding(ctx, sub)


#: Methods that copy a memory-mapped plane set densely into RAM.
_MATERIALIZE_METHODS = frozenset({"materialize"})

#: Copy methods that, applied to a mapped receiver, fault the whole
#: file in (``.copy()`` on the memmap matrix or the plane set).
_COPY_METHODS = frozenset({"copy"})

#: numpy constructors that densify their argument.
_DENSIFY_FUNCS = frozenset({"asarray", "array", "ascontiguousarray"})

#: Substrings that mark a receiver as memory-mapped by project
#: convention (``MappedPlaneSet``, ``np.memmap`` bindings).
_MAPPEDISH_FRAGMENTS = ("mapped", "memmap", "mmap")


def _mappedish(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _MAPPEDISH_FRAGMENTS)


def _arg_root_name(node: ast.AST) -> str:
    """The leftmost identifier of ``x`` / ``x.attr`` / ``x.attr.attr``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _mentions_mapped(node: ast.AST) -> bool:
    return any(_mappedish(name) for name in identifiers_in(node))


@register_rule
class MappedMaterializeLoopRule(Rule):
    """EBI108: full materialisation of mapped planes inside a loop.

    A ``MappedPlaneSet`` exists so kernels evaluate *through* the
    ``np.memmap`` view, paying only for the plane rows a reduced
    function touches (docs/out_of_core.md).  Calling
    ``materialize()`` / ``.copy()`` on a mapped receiver — or
    densifying one via ``np.asarray``/``np.array`` — inside a loop
    faults the entire plane file into fresh RAM every iteration,
    defeating both the memory budget and the Section 3 page
    accounting.  Materialise once outside the loop (and only when the
    residency budget allows a promotion), or keep the evaluation on
    the mapped rows.
    """

    id = "EBI108"
    name = "mapped-materialize-in-loop"
    description = (
        "memory-mapped plane set fully materialised inside a loop; "
        "evaluate through the mapped view or hoist a single "
        "materialisation out of the loop"
    )
    rationale = (
        "Out-of-core contract: mapped planes are read page-wise, "
        "charged to the residency budget; a per-iteration densify "
        "re-reads the whole file and allocates its full footprint "
        "every pass."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        seen: Set[int] = set()
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for sub in ast.walk(loop):
                if (
                    not isinstance(sub, ast.Call)
                    or id(sub) in seen
                    or AllocInLoopRule._in_nested_function(loop, sub)
                ):
                    continue
                if self._is_mapped_densify(sub):
                    seen.add(id(sub))
                    yield self.finding(ctx, sub)

    @staticmethod
    def _is_mapped_densify(call: ast.Call) -> bool:
        name = call_name(call)
        # mapped.materialize() / snapshot.mapped_planes.materialize()
        if name in _MATERIALIZE_METHODS:
            receiver = _receiver_name(call)
            root = (
                _arg_root_name(call.func.value)
                if isinstance(call.func, ast.Attribute)
                else ""
            )
            return _mappedish(receiver) or _mappedish(root)
        # mapped.copy() / mapped.matrix.copy()
        if name in _COPY_METHODS and isinstance(call.func, ast.Attribute):
            return _mentions_mapped(call.func.value)
        # np.asarray(mapped.matrix) / np.array(mapped_planes)
        if (
            name in _DENSIFY_FUNCS
            and call_qualifier(call) in {"np", "numpy"}
            and call.args
        ):
            return _mentions_mapped(call.args[0])
        return False
