"""Baseline file for grandfathered findings.

A baseline lets ebilint be adopted on a tree that is not yet clean:
``python -m repro.lint --write-baseline`` records every current
finding's fingerprint; subsequent runs report only findings *not* in
the baseline, so new violations fail while old ones are tracked debt.

Fingerprints key on (rule, path, offending source text) — see
:meth:`repro.lint.core.Finding.fingerprint` — so pure line-number
drift does not invalidate entries.  Identical findings on distinct
lines (same rule, same text) are handled by counting: a baseline entry
absorbs at most as many findings as were recorded for it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.core import Finding
from repro.errors import InvalidArgumentError

#: Default baseline location, resolved relative to the working tree.
DEFAULT_BASELINE = ".ebilint-baseline.json"

_FORMAT_VERSION = 1


def load_baseline(path: Path) -> Counter:
    """Load fingerprint counts; a missing file is an empty baseline."""
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text())
    if data.get("version") != _FORMAT_VERSION:
        raise InvalidArgumentError(
            f"unsupported baseline version in {path}: {data.get('version')!r}"
        )
    return Counter(
        {str(fp): int(count) for fp, count in data.get("findings", {}).items()}
    )


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Persist the fingerprints of ``findings`` as the new baseline."""
    counts = Counter(finding.fingerprint() for finding in findings)
    payload = {
        "version": _FORMAT_VERSION,
        "findings": {fp: counts[fp] for fp in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], List[str]]:
    """Split findings into (new, still-suppressed-stale-check).

    Returns the findings that survive the baseline plus the list of
    *stale* baseline fingerprints — entries whose violation no longer
    exists, which the caller may report so the baseline gets ratcheted
    down.
    """
    remaining: Dict[str, int] = dict(baseline)
    fresh: List[Finding] = []
    for finding in findings:
        fp = finding.fingerprint()
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
        else:
            fresh.append(finding)
    stale = sorted(fp for fp, count in remaining.items() if count > 0)
    return fresh, stale
