"""Inline suppression comments.

Two forms are recognised, mirroring the usual linter conventions:

``# ebilint: disable=EBI101,EBI204``
    Suppresses the listed rules (or ``all``) on the line carrying the
    comment.

``# ebilint: disable-file=EBI101``
    Anywhere in the file (conventionally near the top): suppresses the
    listed rules (or ``all``) for the whole file.

Suppressions are parsed from the token stream, not with a regex over
raw source, so a pragma inside a string literal is not honoured.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.lint.core import Finding

_PRAGMA = re.compile(
    r"#\s*ebilint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: Wildcard accepted in place of a rule list.
ALL = "all"


@dataclass(slots=True)
class Suppressions:
    """Parsed suppression pragmas of one file."""

    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    whole_file: FrozenSet[str] = frozenset()

    def is_suppressed(self, finding: Finding) -> bool:
        if ALL in self.whole_file or finding.rule in self.whole_file:
            return True
        rules = self.by_line.get(finding.line, frozenset())
        return ALL in rules or finding.rule in rules


def parse_suppressions(source: str) -> Suppressions:
    """Extract pragmas from comments in ``source``.

    Unparsable source yields no suppressions (the parse error is
    reported separately by the runner).
    """
    by_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            rules = {
                part.strip().upper() if part.strip() != ALL else ALL
                for part in match.group("rules").split(",")
                if part.strip()
            }
            if not rules:
                continue
            if match.group("kind") == "disable-file":
                whole_file |= rules
            else:
                by_line.setdefault(token.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass
    return Suppressions(
        by_line={line: frozenset(rules) for line, rules in by_line.items()},
        whole_file=frozenset(whole_file),
    )
