"""Rule framework for ebilint.

A :class:`Rule` inspects one parsed module and yields
:class:`Finding` objects.  Rules are singletons held in a registry
keyed by rule id (``EBI101`` ...); the runner instantiates nothing at
lint time, it just iterates the registry.

Scoping: many rules only make sense inside specific packages (a
per-bit loop is fine in a test, fatal in ``repro.bitmap``).  The
:class:`LintContext` therefore carries the *dotted module name* of the
file under analysis when it can be derived from its path (``src/repro
/bitmap/ops.py`` -> ``repro.bitmap.ops``); files outside the package
tree (tests, examples) lint with ``module=None`` and only the
everywhere-scoped rules apply to them.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Type
from repro.errors import InvalidArgumentError


class Severity(enum.Enum):
    """Severity of a finding; errors gate the exit code."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    severity: Severity = Severity.ERROR
    source_line: str = ""

    def fingerprint(self) -> str:
        """Location-stable identity used by the baseline mechanism.

        Deliberately excludes the line *number* so that unrelated edits
        above a grandfathered finding do not invalidate the baseline;
        it keys on the rule, the file, and the offending source text.
        """
        return f"{self.rule}::{self.path}::{self.source_line.strip()}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.severity.value} {self.rule}: {self.message}"
        )


@dataclass(slots=True)
class LintContext:
    """Everything a rule may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module
    module: Optional[str] = None
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def in_package(self, *prefixes: str) -> bool:
        """Is this file's module inside any of the dotted prefixes?"""
        if self.module is None:
            return False
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


class Rule:
    """Base class for ebilint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies` narrows the rule to the modules whose contracts it
    enforces.
    """

    id: str = ""
    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Paper theorem/definition or performance contract being enforced.
    rationale: str = ""

    def applies(self, ctx: LintContext) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: LintContext, node: ast.AST, message: Optional[str] = None
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            message=message if message is not None else self.description,
            path=ctx.path,
            line=lineno,
            col=col,
            severity=self.severity,
            source_line=ctx.source_line(lineno),
        )


class ProgramRule(Rule):
    """A rule that inspects the *whole-program* model, not one file.

    Per-file linting skips program rules (:meth:`applies` is final and
    returns ``False``); the runner builds one
    :class:`repro.lint.concurrency.model.ProgramModel` over every file
    in the run and calls :meth:`check_program` once.  ``lint_source``
    builds a degenerate single-module model so fixtures and unit tests
    exercise program rules through the same entry point as ordinary
    rules.
    """

    def applies(self, ctx: LintContext) -> bool:
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def check_program(self, model: Any) -> Iterator[Finding]:
        """Yield findings over a built :class:`ProgramModel`."""
        raise NotImplementedError

    def program_finding(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
    ) -> Finding:
        """A finding located inside one of the model's files."""
        return self.finding(ctx, node, message)


_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule singleton to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise InvalidArgumentError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise InvalidArgumentError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> List[Rule]:
    """Registered rules, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


# ----------------------------------------------------------------------
# shared AST helpers used by several rules
# ----------------------------------------------------------------------
def identifiers_in(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr in a subtree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def call_name(node: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``obj.m(...)`` -> ``m``."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def call_qualifier(node: ast.Call) -> Optional[str]:
    """``Cls.method(...)`` -> ``Cls``; plain calls -> ``None``."""
    if isinstance(node.func, ast.Attribute) and isinstance(
        node.func.value, ast.Name
    ):
        return node.func.value.id
    return None


def is_int_literal(node: ast.AST, value: int) -> bool:
    """True for an int constant equal to ``value`` (bools excluded)."""
    return (
        isinstance(node, ast.Constant)
        and type(node.value) is int
        and node.value == value
    )


