"""API-surface rules (EBI2xx continued).

The index constructor normalization (keyword-only ``encoding=``,
``store=``, ``registry=`` in a consistent order across ``index/*``)
keeps deprecated shims for old call forms: extra positional
arguments beyond the table/column anchors, and the renamed
``mapping=``/``mappings=`` keywords.  The shims warn at run time for
*external* callers; in-repo code must not rely on them, or the
deprecation period never ends.  EBI206 flags such calls statically,
in library code and tests alike.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import Finding, LintContext, Rule, register_rule

#: Index constructors and the number of positional arguments their
#: normalized signatures still accept (the table/column anchors).
_POSITIONAL_BUDGET = {
    "EncodedBitmapIndex": 2,
    "SimpleBitmapIndex": 2,
    "ValueListIndex": 2,
    "CompressedBitmapIndex": 2,
    "DynamicBitmapIndex": 2,
    "BitSlicedIndex": 2,
    "BPlusTreeIndex": 2,
    "ProjectionIndex": 2,
    "RangeBitmapIndex": 2,
    "HybridBitmapBTreeIndex": 2,
    "PagedEncodedBitmapIndex": 2,
    "PagedSimpleBitmapIndex": 2,
    "GroupSetIndex": 2,  # (table, column_names)
    "BitmapJoinIndex": 4,  # (fact, fact_column, dimension, dimension_key)
}

_DEPRECATED_KEYWORDS = frozenset({"mapping", "mappings"})


@register_rule
class DeprecatedIndexConstructorRule(Rule):
    """EBI206: in-repo code must use normalized index constructors.

    Extra positional arguments and the ``mapping=``/``mappings=``
    keywords only exist as :class:`DeprecationWarning` shims for
    external callers; repository code (including tests, except the
    ones exercising the shims themselves) calls the keyword-only
    ``encoding=``/``store=``/``registry=`` forms.
    """

    id = "EBI206"
    name = "deprecated-index-ctor"
    description = (
        "deprecated index constructor form; pass options as the "
        "normalized keyword-only arguments (encoding=, store=, "
        "registry=, ...)"
    )
    rationale = (
        "API contract: the positional and mapping= shims are "
        "deprecation aids for external callers; in-repo use keeps "
        "them load-bearing forever."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._called_name(node.func)
            budget = _POSITIONAL_BUDGET.get(name or "")
            if budget is None:
                continue
            if len(node.args) > budget:
                yield self.finding(
                    ctx,
                    node,
                    f"{name} called with {len(node.args)} positional "
                    f"arguments (max {budget}); pass the rest as "
                    "keywords",
                )
            for keyword in node.keywords:
                if keyword.arg in _DEPRECATED_KEYWORDS:
                    replacement = (
                        "encodings"
                        if keyword.arg == "mappings"
                        else "encoding"
                    )
                    yield self.finding(
                        ctx,
                        node,
                        f"{name} called with deprecated "
                        f"{keyword.arg}=; use {replacement}=",
                    )

    @staticmethod
    def _called_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None


#: :class:`repro.query.options.QueryOptions` field names.  Passing any
#: of them as a bare keyword to a query entry point is the pre-redesign
#: calling convention (kept only as a ``DeprecationWarning`` shim for
#: ``workers=``/``trace=``; the rest were never bare kwargs and raise).
_QUERY_OPTION_FIELDS = frozenset(
    {
        "workers",
        "trace",
        "backend",
        "use_kernels",
        "timeout_seconds",
        "snapshot_rows",
        "tenant",
        "use_cache",
    }
)

#: Query entry points and which bare keywords are forbidden on each.
#: ``execute`` deliberately excludes ``trace=`` —
#: ``Executor.select(predicate, trace=...)``-style single-index APIs
#: legitimately keep a trace flag, and plan-level ``execute`` helpers
#: would false-positive; the partition executor's ``execute_many`` has
#: no such collision.
_QUERY_ENTRY_POINTS = {
    "query": _QUERY_OPTION_FIELDS,
    "query_many": _QUERY_OPTION_FIELDS,
    "explain": _QUERY_OPTION_FIELDS,
    "execute": frozenset({"workers", "backend"}),
    "execute_many": frozenset({"workers", "backend", "trace"}),
}


@register_rule
class BareQueryKwargRule(Rule):
    """EBI207: in-repo code must pass query options as ``QueryOptions``.

    The request-API redesign funnels every per-query knob through one
    keyword-only :class:`~repro.query.options.QueryOptions` value.
    The old scattered kwargs (``workers=``, ``trace=``) survive only
    as :class:`DeprecationWarning` shims for external callers — the
    same contract EBI206 enforces for index constructors — and *new*
    bare kwargs (``backend=``, ``tenant=``, ...) never existed, so a
    call using one is a latent ``InvalidArgumentError``.
    """

    id = "EBI207"
    name = "bare-query-kwarg"
    description = (
        "bare query keyword on a query entry point; pass a "
        "QueryOptions (e.g. query(name, pred, "
        "QueryOptions(workers=2)))"
    )
    rationale = (
        "API contract: the kwarg shims on query()/execute() are "
        "deprecation aids for external callers; in-repo use keeps "
        "them load-bearing forever and new bare kwargs raise at "
        "run time."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = DeprecatedIndexConstructorRule._called_name(
                node.func
            )
            forbidden = _QUERY_ENTRY_POINTS.get(name or "")
            if forbidden is None:
                continue
            for keyword in node.keywords:
                if keyword.arg in forbidden:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name}() called with bare {keyword.arg}=; "
                        f"pass QueryOptions({keyword.arg}=...) "
                        "instead",
                    )
