"""Dynamic lock-order sanitizer and interleaving stress harness.

The static analyzer (:mod:`repro.lint.concurrency`) proves discipline
about locks it can *see*; this module checks the same properties at
runtime, where aliasing and dynamic dispatch are no longer a problem:

* :class:`InstrumentedLock` wraps a real ``threading`` lock and
  records, per thread, the order in which locks nest.  A thread that
  acquires ``B`` while holding ``A`` contributes the edge ``A -> B``
  to a shared :class:`LockOrderRecorder`; observing both ``A -> B``
  and ``B -> A`` across the whole run is a lock-order inversion — the
  static cycle check's runtime twin (rule EBI303).  Contended
  acquisitions (a non-blocking try fails before the blocking wait)
  are counted as ``lock_waits``, which the ``cache_contention`` bench
  reports.

* :func:`run_stress` drives a workload from several threads behind a
  start barrier, with *seeded* per-thread micro-delays so a given
  seed replays the same interleaving pressure run after run.  Tests
  sweep many seeds (see ``tests/test_concurrency.py``) instead of
  hoping one lucky scheduling exposes the race.

Everything here is deterministic given the seed: thread bodies draw
delays from ``random.Random`` instances keyed on ``(seed, thread
index)``, never from global entropy.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
)

__all__ = [
    "InstrumentedLock",
    "LockOrderRecorder",
    "StressReport",
    "instrument",
    "make_jitter",
    "run_stress",
]


class NativeLock(Protocol):
    """Structural type covering ``Lock``, ``RLock`` and wrappers."""

    def acquire(
        self, blocking: bool = ..., timeout: float = ...
    ) -> bool: ...

    def release(self) -> None: ...


class LockOrderRecorder:
    """Shared edge set for a group of instrumented locks.

    One recorder spans one "lock universe" (typically: every lock the
    objects under test own).  It keeps a per-thread stack of currently
    held lock names and a global set of nesting edges; inversions are
    computed at the end from the edge set, so they are caught even
    when the two conflicting nestings never overlapped in time.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._edges: Set[Tuple[str, str]] = set()
        self._waits = 0
        self._held = threading.local()

    # -- per-thread held stack -----------------------------------------
    def _stack(self) -> List[str]:
        stack: Optional[List[str]] = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    # -- event hooks (called by InstrumentedLock) ----------------------
    def note_acquired(self, name: str) -> None:
        stack = self._stack()
        if stack:
            with self._mutex:
                for outer in stack:
                    if outer != name:
                        self._edges.add((outer, name))
        stack.append(name)

    def note_released(self, name: str) -> None:
        stack = self._stack()
        # remove the innermost matching entry (reentrant locks may
        # hold the same name more than once)
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def note_wait(self) -> None:
        with self._mutex:
            self._waits += 1

    # -- results -------------------------------------------------------
    @property
    def lock_waits(self) -> int:
        with self._mutex:
            return self._waits

    def edges(self) -> Set[Tuple[str, str]]:
        with self._mutex:
            return set(self._edges)

    def inversions(self) -> List[Tuple[str, str]]:
        """Unordered lock pairs seen nesting in *both* directions."""
        edges = self.edges()
        return sorted(
            (a, b)
            for (a, b) in edges
            if a < b and (b, a) in edges
        )


class InstrumentedLock:
    """Drop-in wrapper around a ``threading`` lock with order tracking.

    Contention is measured with a non-blocking probe: if
    ``acquire(False)`` fails, one ``lock_wait`` is recorded and the
    call falls back to a normal blocking acquire.  An optional
    ``jitter`` callable runs *before* each acquisition — the stress
    harness injects seeded micro-sleeps there to widen race windows
    deterministically.
    """

    def __init__(
        self,
        name: str,
        recorder: LockOrderRecorder,
        inner: Optional[NativeLock] = None,
        jitter: Optional[Callable[[], None]] = None,
    ) -> None:
        self.name = name
        self._recorder = recorder
        self._inner: NativeLock = (
            inner if inner is not None else threading.Lock()
        )
        self._jitter = jitter

    def acquire(
        self, blocking: bool = True, timeout: float = -1
    ) -> bool:
        if self._jitter is not None:
            self._jitter()
        got = self._inner.acquire(False)
        if not got:
            self._recorder.note_wait()
            if not blocking:
                return False
            got = self._inner.acquire(True, timeout)
        if got:
            self._recorder.note_acquired(self.name)
        return got

    def release(self) -> None:
        self._recorder.note_released(self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"InstrumentedLock({self.name!r})"


def instrument(
    obj: Any,
    attr: str = "_lock",
    *,
    recorder: LockOrderRecorder,
    name: Optional[str] = None,
    jitter: Optional[Callable[[], None]] = None,
) -> InstrumentedLock:
    """Swap ``obj.<attr>`` for an instrumented wrapper around it.

    The existing lock object becomes the wrapper's inner lock, so
    reentrancy semantics (``Lock`` vs ``RLock``) are preserved.  The
    default label is ``<TypeName>.<attr>``; pass ``name=`` when
    instrumenting several instances of one class.
    """
    inner = getattr(obj, attr)
    if isinstance(inner, InstrumentedLock):
        return inner
    label = name if name is not None else f"{type(obj).__name__}.{attr}"
    wrapped = InstrumentedLock(
        label, recorder, inner=inner, jitter=jitter
    )
    setattr(obj, attr, wrapped)
    return wrapped


# ---------------------------------------------------------------------
# stress harness
# ---------------------------------------------------------------------
@dataclass
class StressReport:
    """Outcome of one seeded multi-thread stress run."""

    seed: int
    threads: int
    iterations: int
    inversions: List[Tuple[str, str]] = field(default_factory=list)
    lock_waits: int = 0
    errors: List[BaseException] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.inversions and not self.errors

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        parts = [
            f"stress(seed={self.seed}, threads={self.threads}, "
            f"iters={self.iterations}): {status}, "
            f"lock_waits={self.lock_waits}"
        ]
        for a, b in self.inversions:
            parts.append(f"  lock-order inversion: {a} <-> {b}")
        for err in self.errors:
            parts.append(f"  {type(err).__name__}: {err}")
        return "\n".join(parts)


def make_jitter(
    seed: int, max_delay: float = 5e-5
) -> Callable[[], None]:
    """Deterministic per-thread micro-sleep for widening race windows.

    Each thread draws from its own ``random.Random`` keyed on the
    seed and the thread name, so a given seed reproduces the same
    delay sequence per thread regardless of start order.
    """
    local = threading.local()

    def jitter() -> None:
        rng: Optional[random.Random] = getattr(local, "rng", None)
        if rng is None:
            key = f"{seed}:{threading.current_thread().name}"
            rng = random.Random(key)
            local.rng = rng
        if rng.random() < 0.5:
            time.sleep(rng.random() * max_delay)

    return jitter


def run_stress(
    workload: Callable[[int, int], None],
    *,
    threads: int = 4,
    iterations: int = 25,
    seed: int = 0,
    recorder: Optional[LockOrderRecorder] = None,
) -> StressReport:
    """Run ``workload(thread_index, iteration)`` from many threads.

    All threads rendezvous on a barrier, then loop ``iterations``
    times with seeded micro-delays between calls.  Exceptions are
    collected (not raised) so one failing thread cannot mask another
    thread's inversion; pass the ``recorder`` shared by the
    instrumented locks to fold inversions and wait counts into the
    report.
    """
    barrier = threading.Barrier(threads)
    errors: List[BaseException] = []
    errors_mutex = threading.Lock()

    def body(tid: int) -> None:
        rng = random.Random(f"{seed}:{tid}")
        try:
            barrier.wait()
            for i in range(iterations):
                if rng.random() < 0.5:
                    time.sleep(rng.random() * 5e-5)
                workload(tid, i)
        except BaseException as exc:  # report, don't mask
            with errors_mutex:
                errors.append(exc)

    pool = [
        threading.Thread(
            target=body, args=(t,), name=f"stress-{seed}-{t}"
        )
        for t in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    return StressReport(
        seed=seed,
        threads=threads,
        iterations=iterations,
        inversions=(
            recorder.inversions() if recorder is not None else []
        ),
        lock_waits=(
            recorder.lock_waits if recorder is not None else 0
        ),
        errors=errors,
    )
