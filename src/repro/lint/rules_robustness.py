"""Robustness rules (EBI2xx continued).

The fault-injection layer (:mod:`repro.faults`) and the fsck/recovery
path (:mod:`repro.index.verify`) rely on callers being able to catch
:class:`~repro.errors.ReproError` and know they have seen every
library-originated failure.  A bare ``raise ValueError(...)`` deep in
an index or encoder escapes that contract: retry loops will not
classify it, fsck cannot attribute it, and callers either over-catch
(``except Exception``) or miss it entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintContext, Rule, register_rule

#: Builtin exception types library code must not raise directly.
#: ``InvalidArgumentError`` subclasses ``ValueError`` so existing
#: callers (and tests) that catch ``ValueError`` keep working.
_BANNED_EXCEPTIONS = frozenset({"ValueError", "RuntimeError"})


@register_rule
class BareBuiltinRaiseRule(Rule):
    """EBI205: library code raises ReproError subclasses, not bare
    builtins.

    Every failure raised by ``repro`` library code must be a
    :class:`~repro.errors.ReproError` subclass so the storage retry
    machinery, fsck, and callers can classify it.  For bad arguments
    use :class:`~repro.errors.InvalidArgumentError`, which still
    ``isinstance``-checks as ``ValueError``.
    """

    id = "EBI205"
    name = "bare-builtin-raise"
    description = (
        "bare ValueError/RuntimeError raised from library code; raise "
        "a ReproError subclass (e.g. InvalidArgumentError) instead"
    )
    rationale = (
        "Robustness contract: retry/fsck machinery classifies failures "
        "by ReproError subclass; bare builtins escape that taxonomy."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name in _BANNED_EXCEPTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"library code raises bare {name}; raise a "
                    "ReproError subclass (e.g. InvalidArgumentError) "
                    "instead",
                )

    @staticmethod
    def _raised_name(exc: ast.expr) -> str | None:
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            return exc.id
        return None


#: Modules whose on-disk artifacts must survive a crash: everything
#: they persist goes through write-temp -> fsync -> atomic rename (or
#: the append-only fsynced WAL).  A direct ``open(path, "w")`` of a
#: final filename in one of these can be torn by a crash mid-write.
_DURABLE_MODULES = (
    "repro.database",
    "repro.index.serialization",
    "repro.storage.wal",
)

#: Write modes that truncate/overwrite in place.  Append modes ("ab")
#: are fine — the WAL's frame CRCs make a torn appended tail
#: detectable and truncatable.
_OVERWRITE_MODES = frozenset({"w", "wb", "w+", "wb+", "w+b"})


@register_rule
class DurableWriteRule(Rule):
    """EBI401: persistence code must not overwrite final files in
    place.

    In the durability-critical modules, ``open(path, "w")`` on a final
    filename bypasses the write-temp + fsync + atomic-rename protocol
    that :meth:`repro.database.Database.save` and the index serializer
    follow — a crash mid-write then leaves a torn file where a valid
    previous generation used to be.  Writes to a temp name (later
    renamed over the target) and append-mode WAL writes are allowed.
    """

    id = "EBI401"
    name = "durable-write-protocol"
    description = (
        "in-place overwrite of a final file in durability-critical "
        "code; write a .tmp file, fsync it, then os.replace over the "
        "target"
    )
    rationale = (
        "Crash-consistency contract (docs/robustness.md): the rename "
        "is the commit point, so every persisted artifact is either "
        "the old generation or the new one — never a torn mix.  An "
        "in-place open(path, 'w') reintroduces the torn-file window."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package(*_DURABLE_MODULES)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not self._is_open_call(node):
                continue
            assert isinstance(node, ast.Call)
            mode = self._mode_argument(node)
            if mode not in _OVERWRITE_MODES:
                continue
            target = node.args[0] if node.args else None
            if target is not None and self._is_temp_path(target):
                continue
            yield self.finding(
                ctx,
                node,
                f"open(..., {mode!r}) overwrites a final file in "
                "place; write to a .tmp name, fsync, then os.replace "
                "over the target",
            )

    @staticmethod
    def _is_open_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        return isinstance(func, ast.Name) and func.id == "open"

    @staticmethod
    def _mode_argument(call: ast.Call) -> str | None:
        if len(call.args) >= 2:
            mode = call.args[1]
        else:
            mode = next(
                (
                    kw.value
                    for kw in call.keywords
                    if kw.arg == "mode"
                ),
                None,
            )
        if isinstance(mode, ast.Constant) and isinstance(
            mode.value, str
        ):
            return mode.value
        return None

    @staticmethod
    def _is_temp_path(target: ast.expr) -> bool:
        """Conservatively recognise temp-file targets.

        A Name/attribute mentioning ``tmp`` or a string/f-string
        containing ``.tmp`` is taken as the protocol's temp file; the
        rename that follows is the crash-safe commit.
        """
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and "tmp" in node.id.lower():
                return True
            if (
                isinstance(node, ast.Attribute)
                and "tmp" in node.attr.lower()
            ):
                return True
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and ".tmp" in node.value
            ):
                return True
        return False
