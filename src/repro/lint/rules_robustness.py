"""Robustness rules (EBI2xx continued).

The fault-injection layer (:mod:`repro.faults`) and the fsck/recovery
path (:mod:`repro.index.verify`) rely on callers being able to catch
:class:`~repro.errors.ReproError` and know they have seen every
library-originated failure.  A bare ``raise ValueError(...)`` deep in
an index or encoder escapes that contract: retry loops will not
classify it, fsck cannot attribute it, and callers either over-catch
(``except Exception``) or miss it entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import Finding, LintContext, Rule, register_rule

#: Builtin exception types library code must not raise directly.
#: ``InvalidArgumentError`` subclasses ``ValueError`` so existing
#: callers (and tests) that catch ``ValueError`` keep working.
_BANNED_EXCEPTIONS = frozenset({"ValueError", "RuntimeError"})


@register_rule
class BareBuiltinRaiseRule(Rule):
    """EBI205: library code raises ReproError subclasses, not bare
    builtins.

    Every failure raised by ``repro`` library code must be a
    :class:`~repro.errors.ReproError` subclass so the storage retry
    machinery, fsck, and callers can classify it.  For bad arguments
    use :class:`~repro.errors.InvalidArgumentError`, which still
    ``isinstance``-checks as ``ValueError``.
    """

    id = "EBI205"
    name = "bare-builtin-raise"
    description = (
        "bare ValueError/RuntimeError raised from library code; raise "
        "a ReproError subclass (e.g. InvalidArgumentError) instead"
    )
    rationale = (
        "Robustness contract: retry/fsck machinery classifies failures "
        "by ReproError subclass; bare builtins escape that taxonomy."
    )

    def applies(self, ctx: LintContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name in _BANNED_EXCEPTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"library code raises bare {name}; raise a "
                    "ReproError subclass (e.g. InvalidArgumentError) "
                    "instead",
                )

    @staticmethod
    def _raised_name(exc: ast.expr) -> str | None:
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            return exc.id
        return None
