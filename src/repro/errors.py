"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-hierarchies mirror
the package layout: bitmap-level errors, encoding errors, index errors,
storage errors and query errors.
"""

from __future__ import annotations

from typing import Sequence


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidArgumentError(ReproError, ValueError):
    """A caller-supplied argument violates a documented precondition.

    Inherits :class:`ValueError` so call sites written against the
    builtin keep working, while ``except ReproError`` at an API
    boundary still catches it (ebilint EBI205).
    """


class BitmapError(ReproError):
    """Errors from the bit-vector substrate (``repro.bitmap``)."""


class LengthMismatchError(BitmapError):
    """Two bit vectors of different lengths were combined."""

    def __init__(self, left: int, right: int) -> None:
        super().__init__(
            f"bit vectors have different lengths: {left} != {right}"
        )
        self.left = left
        self.right = right


class EncodingError(ReproError):
    """Errors from mapping tables and encodings (``repro.encoding``)."""


class DomainError(EncodingError):
    """A value is not part of the encoded attribute domain."""


class CodeWidthError(EncodingError):
    """A code does not fit into the configured number of bits."""


class DuplicateValueError(EncodingError):
    """A value was inserted twice into a one-to-one mapping."""


class DuplicateCodeError(EncodingError):
    """A code was assigned to two different values."""


class IndexError_(ReproError):
    """Errors from index structures (``repro.index``).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class IndexBuildError(IndexError_):
    """An index could not be built over the given column."""


class UnsupportedPredicateError(IndexError_):
    """An index was asked to evaluate a predicate type it cannot serve."""


class CorruptIndexError(IndexBuildError):
    """A persisted index payload failed an integrity or structural check.

    Raised by :mod:`repro.index.serialization` when a payload is
    truncated, fails a CRC, or decodes into an inconsistent structure,
    and by :mod:`repro.index.verify` when a live index violates one of
    the paper's invariants.  ``offset`` (byte position in the payload)
    and ``field`` (the header/section that failed) locate the damage
    when known.
    """

    def __init__(
        self,
        message: str,
        offset: int | None = None,
        field: str | None = None,
    ) -> None:
        detail = message
        if field is not None:
            detail += f" [field: {field}]"
        if offset is not None:
            detail += f" [offset: {offset}]"
        super().__init__(detail)
        self.offset = offset
        self.field = field


class StorageError(ReproError):
    """Errors from the simulated paged storage (``repro.storage``)."""


class PageOverflowError(StorageError):
    """More bytes were written to a page than its capacity."""


class InvalidPageError(StorageError):
    """A page id does not exist in the pager."""


class ChecksumError(StorageError):
    """A page's committed image no longer matches its CRC32 checksum.

    Signals at-rest corruption (bit rot) or a torn write: the checksum
    was computed for the full intended image but only part of it is
    present.
    """


class IOFaultError(StorageError):
    """An (injected or simulated) I/O operation failed."""


class TransientIOError(IOFaultError):
    """An I/O fault that may succeed when the operation is retried."""


class PermanentIOError(IOFaultError):
    """An I/O fault that will not go away on retry (media failure)."""


class RetryExhaustedError(StorageError):
    """A retried I/O operation kept failing past the attempt budget."""

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class TableError(ReproError):
    """Errors from the table substrate (``repro.table``)."""


class SchemaError(TableError):
    """A star-schema constraint was violated."""


class QueryError(ReproError):
    """Errors from the query layer (``repro.query``)."""


class PlanningError(QueryError):
    """The planner could not produce a plan for a query."""


class QueryTimeoutError(QueryError):
    """A query exceeded its ``QueryOptions.timeout_seconds`` deadline.

    The executor stops collecting partition results and abandons the
    in-flight ones (their worker pool is shut down without waiting);
    no partial result is returned.
    """

    def __init__(self, message: str, timeout_seconds: float = 0.0) -> None:
        super().__init__(message)
        self.timeout_seconds = timeout_seconds


class WorkerCrashError(QueryError):
    """A process-pool worker died mid-query.

    Raised by the ``process`` execution backend when a worker process
    exits (or its pipe breaks) before returning its partition results.
    The strategy tears the pool down; the next query rebuilds it.
    """


class ServingError(ReproError):
    """Errors from the query-serving tier (``repro.serving``)."""


class AdmissionError(ServingError):
    """A request was refused at admission, before any execution."""


class ServerOverloadedError(AdmissionError):
    """The bounded request queue was full and the admission policy
    chose to refuse the request (``reject``) or evict another
    (``shed`` — the evicted request observes this error too)."""


class QuotaExceededError(AdmissionError):
    """The request's tenant is over its configured request quota."""


class ServerClosedError(ServingError):
    """A request arrived at (or was still queued in) a server that has
    been shut down."""


class RequestTimeoutError(ServingError):
    """A served request missed its deadline — queue wait plus
    execution exceeded ``QueryOptions.timeout_seconds``."""


class BenchError(ReproError):
    """Errors from the benchmark harness (``repro.bench``)."""


class BenchSchemaError(BenchError):
    """A ``BENCH_*.json`` payload violated the published schema.

    Carries the individual violations so callers can report all of
    them at once.
    """

    def __init__(
        self, message: str, violations: Sequence[str] = ()
    ) -> None:
        super().__init__(message)
        self.violations = list(violations)
