"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  Sub-hierarchies mirror
the package layout: bitmap-level errors, encoding errors, index errors,
storage errors and query errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class BitmapError(ReproError):
    """Errors from the bit-vector substrate (``repro.bitmap``)."""


class LengthMismatchError(BitmapError):
    """Two bit vectors of different lengths were combined."""

    def __init__(self, left: int, right: int) -> None:
        super().__init__(
            f"bit vectors have different lengths: {left} != {right}"
        )
        self.left = left
        self.right = right


class EncodingError(ReproError):
    """Errors from mapping tables and encodings (``repro.encoding``)."""


class DomainError(EncodingError):
    """A value is not part of the encoded attribute domain."""


class CodeWidthError(EncodingError):
    """A code does not fit into the configured number of bits."""


class DuplicateValueError(EncodingError):
    """A value was inserted twice into a one-to-one mapping."""


class DuplicateCodeError(EncodingError):
    """A code was assigned to two different values."""


class IndexError_(ReproError):
    """Errors from index structures (``repro.index``).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class IndexBuildError(IndexError_):
    """An index could not be built over the given column."""


class UnsupportedPredicateError(IndexError_):
    """An index was asked to evaluate a predicate type it cannot serve."""


class StorageError(ReproError):
    """Errors from the simulated paged storage (``repro.storage``)."""


class PageOverflowError(StorageError):
    """More bytes were written to a page than its capacity."""


class InvalidPageError(StorageError):
    """A page id does not exist in the pager."""


class TableError(ReproError):
    """Errors from the table substrate (``repro.table``)."""


class SchemaError(TableError):
    """A star-schema constraint was violated."""


class QueryError(ReproError):
    """Errors from the query layer (``repro.query``)."""


class PlanningError(QueryError):
    """The planner could not produce a plan for a query."""
