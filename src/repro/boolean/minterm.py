"""Cube (implicant) representation for Boolean minimisation.

An :class:`Implicant` is a product term over ``k`` Boolean variables
``x_0 .. x_{k-1}`` (variable ``x_i`` corresponds to bitmap vector
``B_i`` in the paper).  It is stored as a pair of integers:

* ``care`` — bit ``i`` set means variable ``i`` appears in the term,
* ``bits`` — for each care bit, whether the variable appears plain
  (1) or negated (0).  Bits outside ``care`` are zero.

A full minterm has ``care == (1 << k) - 1``.  Merging two implicants
that differ in exactly one care bit drops that bit — the core step of
Quine–McCluskey.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple
from repro.errors import InvalidArgumentError


@dataclass(frozen=True, slots=True)
class Implicant:
    """A product term over ``width`` variables."""

    bits: int
    care: int
    width: int

    def __post_init__(self) -> None:
        full = (1 << self.width) - 1
        if self.care & ~full:
            raise InvalidArgumentError(
                f"care mask {self.care:#x} exceeds width {self.width}"
            )
        if self.bits & ~self.care:
            raise InvalidArgumentError("bits set outside the care mask")

    # ------------------------------------------------------------------
    @classmethod
    def minterm(cls, value: int, width: int) -> "Implicant":
        """The full minterm for ``value`` over ``width`` variables."""
        full = (1 << width) - 1
        if value & ~full:
            raise InvalidArgumentError(f"value {value} exceeds width {width}")
        return cls(bits=value, care=full, width=width)

    # ------------------------------------------------------------------
    def covers(self, value: int) -> bool:
        """True if this term is satisfied by the assignment ``value``."""
        return (value & self.care) == self.bits

    def literal_count(self) -> int:
        """Number of literals (cared variables) in the term."""
        return self.care.bit_count()

    def variables(self) -> Tuple[int, ...]:
        """Indices of variables appearing in the term, ascending."""
        return tuple(
            i for i in range(self.width) if (self.care >> i) & 1
        )

    def merge(self, other: "Implicant") -> Optional["Implicant"]:
        """Combine with a term differing in exactly one cared literal.

        Returns the merged (one-literal-shorter) term, or ``None`` if
        the two terms are not adjacent.
        """
        if self.width != other.width or self.care != other.care:
            return None
        diff = self.bits ^ other.bits
        if diff == 0 or diff & (diff - 1):
            return None  # identical, or differing in more than one bit
        care = self.care & ~diff
        return Implicant(bits=self.bits & care, care=care, width=self.width)

    def minterms(self) -> Iterator[int]:
        """Enumerate the full minterm values covered by this term."""
        free = [
            i for i in range(self.width) if not (self.care >> i) & 1
        ]
        base = self.bits
        for combo in range(1 << len(free)):
            value = base
            for pos, var in enumerate(free):
                if (combo >> pos) & 1:
                    value |= 1 << var
            yield value

    def is_constant_true(self) -> bool:
        """True when no variables remain (the term covers everything)."""
        return self.care == 0

    # ------------------------------------------------------------------
    def to_string(self, prefix: str = "B") -> str:
        """Render as the paper writes terms, e.g. ``B2'B1B0``.

        Variables are printed from the most significant to the least,
        with a trailing apostrophe for negated literals.
        """
        if self.is_constant_true():
            return "1"
        parts = []
        for i in range(self.width - 1, -1, -1):
            if (self.care >> i) & 1:
                literal = f"{prefix}{i}"
                if not (self.bits >> i) & 1:
                    literal += "'"
                parts.append(literal)
        return "".join(parts)

    def __str__(self) -> str:
        return self.to_string()
