"""Boolean expression AST over bitmap-vector variables.

The DNF produced by logical reduction is sufficient for most query
evaluation, but the paper's footnote 3 (don't-care optimisation, XOR
vs OR forms) and the planner's composite predicates need a general
expression tree.  Nodes are immutable; evaluation over bit vectors is
implemented in :mod:`repro.boolean.evaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.boolean.minterm import Implicant
from repro.boolean.reduction import ReducedFunction


class Expression:
    """Base class for Boolean expression nodes."""

    def variables(self) -> FrozenSet[int]:
        """Distinct variable indexes appearing in the expression."""
        raise NotImplementedError

    def evaluate_value(self, value: int) -> bool:
        """Evaluate with variable ``i`` bound to bit ``i`` of ``value``."""
        raise NotImplementedError

    # Convenience builders -------------------------------------------------
    def __and__(self, other: "Expression") -> "Expression":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Expression":
        return Or((self, other))

    def __xor__(self, other: "Expression") -> "Expression":
        return Xor((self, other))

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True)
class Const(Expression):
    """Constant true/false."""

    value: bool

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def evaluate_value(self, value: int) -> bool:
        return self.value

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Var(Expression):
    """Bitmap-vector variable ``B_index``."""

    index: int

    def variables(self) -> FrozenSet[int]:
        return frozenset((self.index,))

    def evaluate_value(self, value: int) -> bool:
        return bool((value >> self.index) & 1)

    def __str__(self) -> str:
        return f"B{self.index}"


@dataclass(frozen=True)
class Not(Expression):
    """Negation."""

    operand: Expression

    def variables(self) -> FrozenSet[int]:
        return self.operand.variables()

    def evaluate_value(self, value: int) -> bool:
        return not self.operand.evaluate_value(value)

    def __str__(self) -> str:
        inner = str(self.operand)
        if isinstance(self.operand, (Var, Const)):
            return f"{inner}'"
        return f"({inner})'"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction of two or more operands."""

    operands: Tuple[Expression, ...]

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate_value(self, value: int) -> bool:
        return all(op.evaluate_value(value) for op in self.operands)

    def __str__(self) -> str:
        parts = []
        for operand in self.operands:
            text = str(operand)
            if isinstance(operand, (Or, Xor)):
                text = f"({text})"
            parts.append(text)
        return "".join(parts)


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction of two or more operands."""

    operands: Tuple[Expression, ...]

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate_value(self, value: int) -> bool:
        return any(op.evaluate_value(value) for op in self.operands)

    def __str__(self) -> str:
        return " + ".join(str(op) for op in self.operands)


@dataclass(frozen=True)
class Xor(Expression):
    """Exclusive-or of two or more operands (footnote 3 of the paper)."""

    operands: Tuple[Expression, ...]

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate_value(self, value: int) -> bool:
        result = False
        for operand in self.operands:
            result ^= operand.evaluate_value(value)
        return result

    def __str__(self) -> str:
        return " XOR ".join(str(op) for op in self.operands)


def term_expression(term: Implicant) -> Expression:
    """Convert a product term into an expression node."""
    if term.is_constant_true():
        return Const(True)
    literals = []
    for i in range(term.width - 1, -1, -1):
        if (term.care >> i) & 1:
            var: Expression = Var(i)
            if not (term.bits >> i) & 1:
                var = Not(var)
            literals.append(var)
    if len(literals) == 1:
        return literals[0]
    return And(tuple(literals))


def dnf_expression(function: ReducedFunction) -> Expression:
    """Convert a reduced DNF into an expression tree."""
    if function.is_false:
        return Const(False)
    terms = [term_expression(term) for term in function.terms]
    if len(terms) == 1:
        return terms[0]
    return Or(tuple(terms))
