"""Boolean expression AST over bitmap-vector variables.

The DNF produced by logical reduction is sufficient for most query
evaluation, but the paper's footnote 3 (don't-care optimisation, XOR
vs OR forms) and the planner's composite predicates need a general
expression tree.  Nodes are immutable; evaluation over bit vectors is
implemented in :mod:`repro.boolean.evaluator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.boolean.minterm import Implicant
from repro.boolean.reduction import ReducedFunction


class Expression:
    """Base class for Boolean expression nodes."""

    __slots__ = ()

    def variables(self) -> FrozenSet[int]:
        """Distinct variable indexes appearing in the expression."""
        raise NotImplementedError

    def evaluate_value(self, value: int) -> bool:
        """Evaluate with variable ``i`` bound to bit ``i`` of ``value``."""
        raise NotImplementedError

    # Convenience builders -------------------------------------------------
    def __and__(self, other: "Expression") -> "Expression":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Expression":
        return Or((self, other))

    def __xor__(self, other: "Expression") -> "Expression":
        return Xor((self, other))

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True, slots=True)
class Const(Expression):
    """Constant true/false."""

    value: bool

    def variables(self) -> FrozenSet[int]:
        return frozenset()

    def evaluate_value(self, value: int) -> bool:
        return self.value

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True, slots=True)
class Var(Expression):
    """Bitmap-vector variable ``B_index``."""

    index: int

    def variables(self) -> FrozenSet[int]:
        return frozenset((self.index,))

    def evaluate_value(self, value: int) -> bool:
        return bool((value >> self.index) & 1)

    def __str__(self) -> str:
        return f"B{self.index}"


@dataclass(frozen=True, slots=True)
class Not(Expression):
    """Negation."""

    operand: Expression

    def variables(self) -> FrozenSet[int]:
        return self.operand.variables()

    def evaluate_value(self, value: int) -> bool:
        return not self.operand.evaluate_value(value)

    def __str__(self) -> str:
        inner = str(self.operand)
        if isinstance(self.operand, (Var, Const)):
            return f"{inner}'"
        return f"({inner})'"


@dataclass(frozen=True, slots=True)
class And(Expression):
    """Conjunction of two or more operands."""

    operands: Tuple[Expression, ...]

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate_value(self, value: int) -> bool:
        return all(op.evaluate_value(value) for op in self.operands)

    def __str__(self) -> str:
        parts = []
        for operand in self.operands:
            text = str(operand)
            if isinstance(operand, (Or, Xor)):
                text = f"({text})"
            parts.append(text)
        return "".join(parts)


@dataclass(frozen=True, slots=True)
class Or(Expression):
    """Disjunction of two or more operands."""

    operands: Tuple[Expression, ...]

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate_value(self, value: int) -> bool:
        return any(op.evaluate_value(value) for op in self.operands)

    def __str__(self) -> str:
        return " + ".join(str(op) for op in self.operands)


@dataclass(frozen=True, slots=True)
class Xor(Expression):
    """Exclusive-or of two or more operands (footnote 3 of the paper)."""

    operands: Tuple[Expression, ...]

    def variables(self) -> FrozenSet[int]:
        result: FrozenSet[int] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def evaluate_value(self, value: int) -> bool:
        result = False
        for operand in self.operands:
            result ^= operand.evaluate_value(value)
        return result

    def __str__(self) -> str:
        return " XOR ".join(str(op) for op in self.operands)


# ----------------------------------------------------------------------
# factory helpers — the sanctioned construction path outside this
# package (ebilint EBI203).  They normalise operand lists so client
# code never touches the raw operand-tuple layout of the dataclasses.
# ----------------------------------------------------------------------
def var(index: int) -> Var:
    """Variable ``B_index``."""
    return Var(index)


def const(value: bool) -> Const:
    """Constant true/false."""
    return Const(bool(value))


def not_(operand: Expression) -> Expression:
    """Negation, collapsing double negation."""
    if isinstance(operand, Not):
        return operand.operand
    return Not(operand)


def and_(*operands: Expression) -> Expression:
    """Conjunction; flattens nested ANDs and normalises arity.

    Zero operands give the AND identity ``Const(True)``; a single
    operand is returned unchanged.
    """
    flat = _flatten(operands, And)
    if not flat:
        return Const(True)
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def or_(*operands: Expression) -> Expression:
    """Disjunction; flattens nested ORs and normalises arity.

    Zero operands give the OR identity ``Const(False)``.
    """
    flat = _flatten(operands, Or)
    if not flat:
        return Const(False)
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def xor_(*operands: Expression) -> Expression:
    """Exclusive-or; flattens nested XORs (associativity).

    Zero operands give the XOR identity ``Const(False)``.
    """
    flat = _flatten(operands, Xor)
    if not flat:
        return Const(False)
    if len(flat) == 1:
        return flat[0]
    return Xor(flat)


def _flatten(
    operands: Tuple[Expression, ...], node_type: type
) -> Tuple[Expression, ...]:
    flat: list = []
    for operand in operands:
        if not isinstance(operand, Expression):
            raise TypeError(
                f"expression operand expected, got {operand!r}"
            )
        if isinstance(operand, node_type):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    return tuple(flat)


def term_expression(term: Implicant) -> Expression:
    """Convert a product term into an expression node."""
    if term.is_constant_true():
        return Const(True)
    literals = []
    for i in range(term.width - 1, -1, -1):
        if (term.care >> i) & 1:
            var: Expression = Var(i)
            if not (term.bits >> i) & 1:
                var = Not(var)
            literals.append(var)
    if len(literals) == 1:
        return literals[0]
    return And(tuple(literals))


def dnf_expression(function: ReducedFunction) -> Expression:
    """Convert a reduced DNF into an expression tree."""
    if function.is_false:
        return Const(False)
    terms = [term_expression(term) for term in function.terms]
    if len(terms) == 1:
        return terms[0]
    return Or(tuple(terms))
