"""Boolean-function machinery for retrieval functions.

The paper defines one *retrieval Boolean function* per attribute value
(a k-variable minterm over the index's bitmap vectors) and evaluates
selections by OR-ing the minterms of the selected values, then
*logically reducing* the resulting expression so as few bitmap vectors
as possible must be read (footnote 4 of the paper counts cost after
reduction).

This package provides:

* :mod:`~repro.boolean.minterm` — cube/implicant representation,
* :mod:`~repro.boolean.quine_mccluskey` — prime implicant generation,
* :mod:`~repro.boolean.petrick` — exact/greedy minimal cover,
* :mod:`~repro.boolean.reduction` — the ``reduce_values`` front door,
* :mod:`~repro.boolean.support` — exact minimal variable support with
  don't-cares (the theoretical best case the paper calls Property 3.1),
* :mod:`~repro.boolean.expr` — expression AST,
* :mod:`~repro.boolean.evaluator` — evaluation over bitmap vectors with
  vector-access accounting.
"""

from repro.boolean.minterm import Implicant
from repro.boolean.quine_mccluskey import prime_implicants
from repro.boolean.petrick import minimal_cover
from repro.boolean.reduction import (
    ReducedFunction,
    clear_reduction_cache,
    distinct_variables,
    reduce_values,
    reduce_values_cached,
    reduction_cache_stats,
)
from repro.boolean.support import minimal_support
from repro.boolean.expr import (
    Expression,
    Var,
    Not,
    And,
    Or,
    Xor,
    Const,
    and_,
    const,
    dnf_expression,
    not_,
    or_,
    var,
    xor_,
)
from repro.boolean.evaluator import AccessCounter, evaluate_dnf, evaluate_expression

__all__ = [
    "Implicant",
    "prime_implicants",
    "minimal_cover",
    "ReducedFunction",
    "reduce_values",
    "reduce_values_cached",
    "reduction_cache_stats",
    "clear_reduction_cache",
    "distinct_variables",
    "minimal_support",
    "Expression",
    "Var",
    "Not",
    "And",
    "Or",
    "Xor",
    "Const",
    "and_",
    "const",
    "dnf_expression",
    "not_",
    "or_",
    "var",
    "xor_",
    "AccessCounter",
    "evaluate_dnf",
    "evaluate_expression",
]
