"""Quine–McCluskey prime implicant generation.

The paper's Section 3.2 ("Logical Reduction") notes that brute-force
reduction is exponential but feasible because retrieval functions are
reduced once per (pre-defined) predicate.  This module implements the
classic tabulation method with don't-care support; don't-cares arise
from unused codes (``2^k - m`` spare codes) and from the void-tuple
optimisation of Theorem 2.1.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.boolean.minterm import Implicant
from repro.errors import InvalidArgumentError


def prime_implicants(
    on_set: Iterable[int],
    width: int,
    dont_cares: Iterable[int] = (),
) -> List[Implicant]:
    """Compute all prime implicants of the function.

    Parameters
    ----------
    on_set:
        Minterm values where the function is 1.
    width:
        Number of variables ``k``.
    dont_cares:
        Minterm values whose output is unconstrained.  They participate
        in merging but never need to be covered.

    Returns
    -------
    list of :class:`Implicant`
        The prime implicants, ordered deterministically (by descending
        coverage, then by ``(care, bits)``).
    """
    on = set(on_set)
    dc = set(dont_cares) - on
    full = (1 << width) - 1
    for value in on | dc:
        if value & ~full:
            raise InvalidArgumentError(f"minterm {value} exceeds width {width}")

    if not on:
        return []
    if len(on) + len(dc) == (1 << width):
        # Function (with don't-cares) covers the whole cube: the single
        # prime implicant is the constant-true term.
        return [Implicant(bits=0, care=0, width=width)]

    current: Set[Tuple[int, int]] = {
        (value, full) for value in on | dc
    }
    primes: Set[Tuple[int, int]] = set()

    while current:
        merged_from: Set[Tuple[int, int]] = set()
        next_level: Set[Tuple[int, int]] = set()
        # Group by care mask and popcount so only plausible neighbours
        # are compared.
        groups: Dict[Tuple[int, int], List[int]] = {}
        for bits, care in current:
            key = (care, bits.bit_count())
            groups.setdefault(key, []).append(bits)
        for (care, ones), members in groups.items():
            partner_key = (care, ones + 1)
            partners = groups.get(partner_key, [])
            if not partners:
                continue
            partner_set = set(partners)
            for bits in members:
                # try flipping each zero care-bit to find a neighbour
                remaining = care & ~bits
                probe = remaining
                while probe:
                    low = probe & -probe
                    probe ^= low
                    other = bits | low
                    if other in partner_set:
                        new_care = care & ~low
                        next_level.add((bits & new_care, new_care))
                        merged_from.add((bits, care))
                        merged_from.add((other, care))
        primes |= current - merged_from
        current = next_level

    result = [
        Implicant(bits=bits, care=care, width=width)
        for bits, care in primes
    ]
    result.sort(
        key=lambda imp: (imp.literal_count(), imp.care, imp.bits)
    )
    return result


def coverage_table(
    primes: List[Implicant], on_set: Iterable[int]
) -> Dict[int, FrozenSet[int]]:
    """Map each ON minterm to the set of prime indexes covering it."""
    table: Dict[int, FrozenSet[int]] = {}
    for value in on_set:
        covering = frozenset(
            i for i, prime in enumerate(primes) if prime.covers(value)
        )
        if not covering:
            raise InvalidArgumentError(
                f"minterm {value} not covered by any prime implicant"
            )
        table[value] = covering
    return table
