"""Logical reduction of retrieval Boolean functions.

``reduce_values`` is the front door used by the encoded bitmap index:
given the set of codes selected by a predicate it produces a minimal
DNF over the bitmap-vector variables, and :func:`distinct_variables`
counts how many bitmap vectors the reduced expression actually touches
— exactly the quantity ``c_e`` the paper measures in Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set, Tuple

from repro.boolean.minterm import Implicant
from repro.boolean.petrick import minimal_cover
from repro.boolean.quine_mccluskey import prime_implicants
from repro.cache import LRUCache

#: Entries kept in the process-wide reduction cache.  Each entry is a
#: small tuple of implicants; 512 covers every distinct predicate shape
#: of the bench workloads several times over.
REDUCTION_CACHE_SIZE = 512

#: Cache key: (sorted codes, width, sorted don't-cares, exact flag) —
#: everything :func:`reduce_values` depends on.
ReductionKey = Tuple[Tuple[int, ...], int, Tuple[int, ...], bool]


@dataclass(frozen=True, slots=True)
class ReducedFunction:
    """A logically reduced retrieval function.

    Attributes
    ----------
    terms:
        The minimal DNF as a tuple of implicants.  An empty tuple means
        the constant-false function; a single constant-true implicant
        means every tuple qualifies.
    width:
        Number of bitmap-vector variables ``k``.
    """

    terms: Tuple[Implicant, ...]
    width: int

    @property
    def is_false(self) -> bool:
        return not self.terms

    @property
    def is_true(self) -> bool:
        return len(self.terms) == 1 and self.terms[0].is_constant_true()

    def variables(self) -> Tuple[int, ...]:
        """Distinct bitmap-vector indexes read by the expression."""
        used: Set[int] = set()
        for term in self.terms:
            used.update(term.variables())
        return tuple(sorted(used))

    def vector_count(self) -> int:
        """The paper's cost measure: distinct vectors accessed (c_e)."""
        return len(self.variables())

    def evaluate_value(self, value: int) -> bool:
        """Evaluate on a single code (truth-table check)."""
        return any(term.covers(value) for term in self.terms)

    def to_string(self, prefix: str = "B") -> str:
        """Render the DNF the way the paper prints it.

        Example: ``B2'B1 + B2B1'``.
        """
        if self.is_false:
            return "0"
        return " + ".join(term.to_string(prefix) for term in self.terms)

    def __str__(self) -> str:
        return self.to_string()


def reduce_values(
    codes: Iterable[int],
    width: int,
    dont_cares: Iterable[int] = (),
    exact: bool = True,
) -> ReducedFunction:
    """Reduce ``OR`` of the minterms of ``codes`` to a minimal DNF.

    Parameters
    ----------
    codes:
        Codes (attribute-value encodings) selected by the predicate.
    width:
        Number of bitmap vectors ``k``.
    dont_cares:
        Codes whose truth value is unconstrained — unused codes of the
        mapping, and (under Theorem 2.1) the void code when it cannot be
        selected anyway.
    exact:
        Passed through to :func:`minimal_cover`.
    """
    on = sorted(set(codes))
    if not on:
        return ReducedFunction(terms=(), width=width)
    primes = prime_implicants(on, width, dont_cares)
    cover = minimal_cover(primes, on, exact=exact)
    return ReducedFunction(terms=tuple(cover), width=width)


#: Process-wide reduction cache.  Quine–McCluskey/Petrick is a pure
#: function of the key, so entries never go stale — mapping changes on
#: an index change the codes/don't-cares and therefore the key.  Shared
#: across indexes and partitions: 16 partitions built over one shared
#: mapping reduce a repeated predicate once, not 16 times.
reduction_cache: LRUCache[ReductionKey, ReducedFunction] = LRUCache(
    REDUCTION_CACHE_SIZE, metrics_prefix="boolean.reduction_cache"
)


def reduction_key(
    codes: Iterable[int],
    width: int,
    dont_cares: Iterable[int] = (),
    exact: bool = True,
) -> ReductionKey:
    """Canonical cache key for a reduction request."""
    return (
        tuple(sorted(set(codes))),
        width,
        tuple(sorted(set(dont_cares))),
        exact,
    )


def reduce_values_cached(
    codes: Iterable[int],
    width: int,
    dont_cares: Iterable[int] = (),
    exact: bool = True,
) -> ReducedFunction:
    """:func:`reduce_values` through the process-wide LRU cache.

    Hit/miss/eviction counts are published to the calling thread's
    metrics registry under ``boolean.reduction_cache.*``.
    """
    key = reduction_key(codes, width, dont_cares, exact)
    cached = reduction_cache.get(key)
    if cached is not None:
        return cached
    function = reduce_values(key[0], width, dont_cares=key[2], exact=exact)
    reduction_cache.put(key, function)
    return function


def reduction_cache_stats() -> Tuple[int, int, int]:
    """(hits, misses, current size) of the process reduction cache."""
    return (
        reduction_cache.hits,
        reduction_cache.misses,
        len(reduction_cache),
    )


def clear_reduction_cache() -> None:
    """Drop all cached reductions (tests and benchmarks)."""
    reduction_cache.clear()


def distinct_variables(terms: Sequence[Implicant]) -> int:
    """Count the distinct variables across a DNF term list."""
    used: Set[int] = set()
    for term in terms:
        used.update(term.variables())
    return len(used)


def minterm_dnf(codes: Iterable[int], width: int) -> ReducedFunction:
    """The *unreduced* retrieval expression: one full minterm per code.

    This is the worst case the paper analyses: evaluating it touches
    all ``width`` vectors whenever at least one code is selected.
    """
    terms = tuple(
        Implicant.minterm(code, width) for code in sorted(set(codes))
    )
    return ReducedFunction(terms=terms, width=width)
