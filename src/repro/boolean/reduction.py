"""Logical reduction of retrieval Boolean functions.

``reduce_values`` is the front door used by the encoded bitmap index:
given the set of codes selected by a predicate it produces a minimal
DNF over the bitmap-vector variables, and :func:`distinct_variables`
counts how many bitmap vectors the reduced expression actually touches
— exactly the quantity ``c_e`` the paper measures in Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Set, Tuple

from repro.boolean.minterm import Implicant
from repro.boolean.petrick import minimal_cover
from repro.boolean.quine_mccluskey import prime_implicants


@dataclass(frozen=True, slots=True)
class ReducedFunction:
    """A logically reduced retrieval function.

    Attributes
    ----------
    terms:
        The minimal DNF as a tuple of implicants.  An empty tuple means
        the constant-false function; a single constant-true implicant
        means every tuple qualifies.
    width:
        Number of bitmap-vector variables ``k``.
    """

    terms: Tuple[Implicant, ...]
    width: int

    @property
    def is_false(self) -> bool:
        return not self.terms

    @property
    def is_true(self) -> bool:
        return len(self.terms) == 1 and self.terms[0].is_constant_true()

    def variables(self) -> Tuple[int, ...]:
        """Distinct bitmap-vector indexes read by the expression."""
        used: Set[int] = set()
        for term in self.terms:
            used.update(term.variables())
        return tuple(sorted(used))

    def vector_count(self) -> int:
        """The paper's cost measure: distinct vectors accessed (c_e)."""
        return len(self.variables())

    def evaluate_value(self, value: int) -> bool:
        """Evaluate on a single code (truth-table check)."""
        return any(term.covers(value) for term in self.terms)

    def to_string(self, prefix: str = "B") -> str:
        """Render the DNF the way the paper prints it.

        Example: ``B2'B1 + B2B1'``.
        """
        if self.is_false:
            return "0"
        return " + ".join(term.to_string(prefix) for term in self.terms)

    def __str__(self) -> str:
        return self.to_string()


def reduce_values(
    codes: Iterable[int],
    width: int,
    dont_cares: Iterable[int] = (),
    exact: bool = True,
) -> ReducedFunction:
    """Reduce ``OR`` of the minterms of ``codes`` to a minimal DNF.

    Parameters
    ----------
    codes:
        Codes (attribute-value encodings) selected by the predicate.
    width:
        Number of bitmap vectors ``k``.
    dont_cares:
        Codes whose truth value is unconstrained — unused codes of the
        mapping, and (under Theorem 2.1) the void code when it cannot be
        selected anyway.
    exact:
        Passed through to :func:`minimal_cover`.
    """
    on = sorted(set(codes))
    if not on:
        return ReducedFunction(terms=(), width=width)
    primes = prime_implicants(on, width, dont_cares)
    cover = minimal_cover(primes, on, exact=exact)
    return ReducedFunction(terms=tuple(cover), width=width)


def distinct_variables(terms: Sequence[Implicant]) -> int:
    """Count the distinct variables across a DNF term list."""
    used: Set[int] = set()
    for term in terms:
        used.update(term.variables())
    return len(used)


def minterm_dnf(codes: Iterable[int], width: int) -> ReducedFunction:
    """The *unreduced* retrieval expression: one full minterm per code.

    This is the worst case the paper analyses: evaluating it touches
    all ``width`` vectors whenever at least one code is selected.
    """
    terms = tuple(
        Implicant.minterm(code, width) for code in sorted(set(codes))
    )
    return ReducedFunction(terms=terms, width=width)
