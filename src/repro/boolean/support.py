"""Exact minimal variable support of a partially specified function.

The paper's best-case cost (Property 3.1 of the companion technical
report) is the fewest bitmap vectors *any* correct retrieval expression
can read.  That is exactly the minimal support problem: find the
smallest set ``S`` of variables such that some completion of the
function (ON set fixed to 1, OFF set fixed to 0, don't-cares free)
depends only on the variables in ``S``.

A set ``S`` works iff no ON point and OFF point agree on all variables
of ``S`` — the don't-cares can then be filled by projecting.  We search
subsets in order of increasing size; for the widths used in this
library (k <= 14) the exhaustive search is fast because projections are
computed with integer masking and set intersection.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Set, Tuple
from repro.errors import InvalidArgumentError


def _mask_of(variables: Iterable[int]) -> int:
    mask = 0
    for var in variables:
        mask |= 1 << var
    return mask


def is_valid_support(
    mask: int, on_set: Set[int], off_set: Set[int]
) -> bool:
    """True if projecting onto ``mask`` separates ON from OFF points."""
    on_proj = {value & mask for value in on_set}
    for value in off_set:
        if (value & mask) in on_proj:
            return False
    return True


def minimal_support(
    on_set: Iterable[int],
    width: int,
    dont_cares: Iterable[int] = (),
    max_subset_bits: Optional[int] = None,
) -> Tuple[int, ...]:
    """Smallest variable set a correct completion can depend on.

    Parameters
    ----------
    on_set:
        Codes where the function must be 1.
    width:
        Number of variables ``k``.
    dont_cares:
        Codes whose value is free.
    max_subset_bits:
        Optional cap on the exhaustive search width; wider instances
        raise ``ValueError`` (callers should fall back to the reduced
        DNF's variable set).

    Returns
    -------
    tuple of int
        Variable indexes of one minimal support, ascending.  The empty
        tuple means the function can be completed to a constant.
    """
    if max_subset_bits is None:
        max_subset_bits = 16
    if width > max_subset_bits:
        raise InvalidArgumentError(
            f"width {width} exceeds exhaustive search cap {max_subset_bits}"
        )

    on = set(on_set)
    dc = set(dont_cares) - on
    universe = range(1 << width)
    off = {value for value in universe if value not in on and value not in dc}

    if not on or not off:
        return ()

    for size in range(width + 1):
        for subset in combinations(range(width), size):
            mask = _mask_of(subset)
            if is_valid_support(mask, on, off):
                return subset
    # Unreachable: the full variable set always separates.
    return tuple(range(width))


def minimal_support_size(
    on_set: Iterable[int],
    width: int,
    dont_cares: Iterable[int] = (),
) -> int:
    """Size of the minimal support (best-case vectors accessed)."""
    return len(minimal_support(on_set, width, dont_cares))
