"""Fast retrieval functions for code intervals.

For total-order preserving encodings, a range selection maps to a
*code interval* ``[lo, hi]``.  Running full Quine–McCluskey on the
interval's minterms costs exponential time in the worst case; the
classic binary interval decomposition produces a provably minimal-ish
cover in O(k) time: the interval splits into at most ``2k`` aligned
subcubes (the nodes of a segment tree over the code space).

``reduce_interval`` returns the same :class:`ReducedFunction` type as
:func:`~repro.boolean.reduction.reduce_values`, so index code can use
either interchangeably.
"""

from __future__ import annotations

from typing import List

from repro.boolean.minterm import Implicant
from repro.boolean.reduction import ReducedFunction
from repro.errors import InvalidArgumentError


def interval_cubes(lo: int, hi: int, width: int) -> List[Implicant]:
    """Aligned subcubes exactly covering the integer interval [lo, hi].

    Standard binary decomposition: greedily peel the largest aligned
    power-of-two block from the low end, then from the high end,
    meeting in the middle.  At most ``2 * width`` cubes result.
    """
    full = (1 << width) - 1
    if lo < 0 or hi > full:
        raise InvalidArgumentError(
            f"interval [{lo}, {hi}] exceeds width {width}"
        )
    cubes: List[Implicant] = []
    if lo > hi:
        return cubes

    low, high = lo, hi
    low_cubes: List[Implicant] = []
    high_cubes: List[Implicant] = []
    while low <= high:
        # largest aligned block starting at `low`
        low_block = low & -low if low else 1 << width
        while low + low_block - 1 > high:
            low_block >>= 1
        # largest aligned block ending at `high`
        high_block = (high + 1) & -(high + 1) if high + 1 <= full else 1 << width
        while high + 1 - high_block < low:
            high_block >>= 1

        if low_block >= high_block:
            low_cubes.append(_aligned_cube(low, low_block, width))
            low += low_block
        else:
            high_cubes.append(
                _aligned_cube(high + 1 - high_block, high_block, width)
            )
            high -= high_block
    cubes = low_cubes + high_cubes[::-1]
    return cubes


def _aligned_cube(start: int, size: int, width: int) -> Implicant:
    """The subcube covering [start, start + size) (size a power of 2,
    start aligned to size)."""
    free = size - 1
    care = ((1 << width) - 1) & ~free
    return Implicant(bits=start & care, care=care, width=width)


def reduce_interval(lo: int, hi: int, width: int) -> ReducedFunction:
    """Minimal-cover style DNF for ``lo <= code <= hi`` in O(width).

    The result selects exactly the codes in the interval (no
    don't-care use), matching
    ``reduce_values(range(lo, hi + 1), width)`` semantically while
    avoiding the QM tabulation entirely.
    """
    return ReducedFunction(
        terms=tuple(interval_cubes(lo, hi, width)), width=width
    )
