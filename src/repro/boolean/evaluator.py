"""Evaluation of retrieval expressions over bitmap vectors.

The evaluator mirrors the paper's cost accounting: every *distinct*
bitmap vector pulled from the index while computing a result counts as
one access (footnote 4 ignores the CPU cost of the logical ops).  The
:class:`AccessCounter` records which vectors were touched; benches read
``counter.distinct_accesses`` to obtain the measured ``c_e``/``c_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.bitmap.bitvector import BitVector
from repro.boolean.expr import And, Const, Expression, Not, Or, Var, Xor
from repro.boolean.reduction import ReducedFunction
from repro.obs.metrics import MetricsRegistry


@dataclass(slots=True)
class AccessCounter:
    """Records bitmap-vector accesses during one evaluation."""

    touched: Set[int] = field(default_factory=set)
    reads: int = 0

    def record(self, index: int) -> None:
        self.touched.add(index)
        self.reads += 1

    @property
    def distinct_accesses(self) -> int:
        """The paper's cost unit: distinct vectors read."""
        return len(self.touched)

    def merge(self, other: "AccessCounter") -> None:
        self.touched |= other.touched
        self.reads += other.reads

    def publish(
        self, registry: MetricsRegistry, prefix: str = "evaluator"
    ) -> None:
        """Fold this evaluation's totals into a metrics registry.

        Called once per evaluation (never per access), so the
        evaluator's per-vector hot loop carries zero instrumentation
        overhead — the bound documented in ``docs/observability.md``.
        """
        registry.counter(f"{prefix}.vector_reads").inc(self.reads)
        registry.counter(f"{prefix}.distinct_vectors").inc(
            len(self.touched)
        )


class VectorSource:
    """Callable adaptor giving the evaluator access-counted vectors.

    Returned vectors are *borrowed*: the source caches the fetched
    vector and hands the same object back on repeat reads, so callers
    must never mutate one in place (copy first, or use read-only ops
    like ``&=`` *with* the borrowed vector on the right-hand side).
    This is the single-copy discipline ``evaluate_dnf`` and ``_eval``
    rely on — no defensive copy here, no second copy at the call site.
    """

    __slots__ = ("_fetch", "_counter", "_cache")

    def __init__(
        self,
        fetch: Callable[[int], BitVector],
        counter: AccessCounter,
    ) -> None:
        self._fetch = fetch
        self._counter = counter
        self._cache: Dict[int, BitVector] = {}

    def __call__(self, index: int) -> BitVector:
        self._counter.record(index)
        if index not in self._cache:
            self._cache[index] = self._fetch(index)
        return self._cache[index]


def evaluate_expression(
    expression: Expression,
    fetch: Callable[[int], BitVector],
    nbits: int,
    counter: Optional[AccessCounter] = None,
) -> BitVector:
    """Evaluate an expression tree into a result bit vector.

    Parameters
    ----------
    expression:
        The retrieval expression over variables ``B_i``.
    fetch:
        Returns the bitmap vector for variable ``i``.
    nbits:
        Length of the vectors (needed for constants).
    counter:
        Optional access counter; each distinct variable fetched is one
        access.
    """
    if counter is None:
        counter = AccessCounter()
    source = VectorSource(fetch, counter)
    return _eval(expression, source, nbits)


def _eval(
    expression: Expression, source: VectorSource, nbits: int
) -> BitVector:
    """Evaluate to an *owned* vector the caller may mutate."""
    if isinstance(expression, Var):
        return source(expression.index).copy()
    return _eval_ref(expression, source, nbits)


def _eval_ref(
    expression: Expression, source: VectorSource, nbits: int
) -> BitVector:
    """Evaluate to a possibly *borrowed* vector (read-only result).

    ``Var`` leaves return the source's cached vector without copying;
    every composite node allocates a fresh result anyway.  Callers
    that mutate (the in-place accumulators below) evaluate their first
    operand through :func:`_eval` and keep borrowed operands strictly
    on the read side of ``&=``/``|=``/``^=``.
    """
    if isinstance(expression, Const):
        return BitVector.ones(nbits) if expression.value else BitVector(nbits)
    if isinstance(expression, Var):
        return source(expression.index)
    if isinstance(expression, Not):
        return ~_eval_ref(expression.operand, source, nbits)
    if isinstance(expression, And):
        result = _eval(expression.operands[0], source, nbits)
        for operand in expression.operands[1:]:
            result &= _eval_ref(operand, source, nbits)
        return result
    if isinstance(expression, Or):
        result = _eval(expression.operands[0], source, nbits)
        for operand in expression.operands[1:]:
            result |= _eval_ref(operand, source, nbits)
        return result
    if isinstance(expression, Xor):
        result = _eval(expression.operands[0], source, nbits)
        for operand in expression.operands[1:]:
            result ^= _eval_ref(operand, source, nbits)
        return result
    raise TypeError(f"unknown expression node: {expression!r}")


def evaluate_dnf(
    function: ReducedFunction,
    fetch: Callable[[int], BitVector],
    nbits: int,
    counter: Optional[AccessCounter] = None,
) -> BitVector:
    """Evaluate a reduced DNF directly (fast path, no AST needed)."""
    if counter is None:
        counter = AccessCounter()
    source = VectorSource(fetch, counter)

    if function.is_false:
        return BitVector(nbits)
    # A constant-true term makes the whole OR true; deciding this up
    # front also keeps vector allocation out of the term loop (EBI102).
    if any(term.is_constant_true() for term in function.terms):
        return BitVector.ones(nbits)

    result = BitVector(nbits)
    for term in function.terms:
        term_vector: Optional[BitVector] = None
        for i in term.variables():
            vector = source(i)
            positive = bool((term.bits >> i) & 1)
            if term_vector is None:
                # First literal seeds the accumulator: the only copy
                # (positive) or inversion (negated) in the term.
                term_vector = vector.copy() if positive else ~vector
            elif positive:
                term_vector &= vector
            else:
                term_vector.iandnot(vector)
        if term_vector is not None:
            result |= term_vector
    return result
