"""Minimal-cover selection over prime implicants.

After Quine–McCluskey generates the prime implicants, a minimum subset
covering every ON minterm must be selected.  Small instances are solved
exactly with Petrick's method (product-of-sums expansion with
absorption); larger instances fall back to essential-prime extraction
followed by a greedy set cover, which is the standard engineering
compromise the paper alludes to when it says heuristics are needed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.boolean.minterm import Implicant
from repro.boolean.quine_mccluskey import coverage_table
from repro.errors import InvalidArgumentError

#: Petrick expansion is only attempted when the reduced covering
#: problem is small: at most this many still-uncovered minterms ...
_EXACT_LIMIT_MINTERMS = 24
#: ... and at most this many candidate primes involved.
_EXACT_LIMIT_PRIMES = 28
#: Hard cap on the number of partial products kept during expansion
#: (absorption is quadratic, so this must stay modest).
_EXACT_LIMIT_PRODUCTS = 1500


def minimal_cover(
    primes: Sequence[Implicant],
    on_set: Sequence[int],
    exact: bool = True,
) -> List[Implicant]:
    """Select a minimal set of primes covering every ON minterm.

    Parameters
    ----------
    primes:
        Candidate prime implicants (from :func:`prime_implicants`).
    on_set:
        Minterms that must be covered (don't-cares excluded).
    exact:
        When True, use Petrick's method if the instance is small
        enough; otherwise (or when too large) use greedy cover after
        extracting essential primes.

    Returns
    -------
    list of :class:`Implicant`
        The chosen cover, sorted by fewest literals first.
    """
    on_list = list(dict.fromkeys(on_set))
    if not on_list:
        return []
    if not primes:
        raise InvalidArgumentError("no prime implicants supplied for a non-empty ON set")

    table = coverage_table(list(primes), on_list)

    chosen: Set[int] = set()
    uncovered: Set[int] = set(on_list)

    # Essential primes: minterms covered by exactly one prime.
    changed = True
    while changed:
        changed = False
        for value in list(uncovered):
            covering = table[value]
            alive = covering - _dominated(covering, chosen)
            if len(covering) == 1:
                (only,) = covering
                if only not in chosen:
                    chosen.add(only)
                    changed = True
        if changed:
            uncovered = {
                value
                for value in uncovered
                if not any(primes[i].covers(value) for i in chosen)
            }

    if uncovered:
        involved = set()
        for value in uncovered:
            involved |= table[value]
        small_enough = (
            len(uncovered) <= _EXACT_LIMIT_MINTERMS
            and len(involved) <= _EXACT_LIMIT_PRIMES
        )
        if exact and small_enough:
            extra = _petrick(table, uncovered)
        else:
            extra = _greedy(primes, uncovered)
        chosen |= extra

    cover = [primes[i] for i in sorted(chosen)]
    cover.sort(key=lambda imp: (imp.literal_count(), imp.care, imp.bits))
    return cover


def _dominated(covering: FrozenSet[int], chosen: Set[int]) -> Set[int]:
    """Placeholder hook for row/column dominance (kept simple)."""
    return set()


def _petrick(
    table: Dict[int, FrozenSet[int]], uncovered: Set[int]
) -> Set[int]:
    """Petrick's method: expand the POS cover expression to SOP.

    Each partial product is a frozenset of prime indexes; absorption
    keeps only minimal products, and the smallest final product wins.
    """
    products: Set[FrozenSet[int]] = {frozenset()}
    for value in sorted(uncovered):
        alternatives = table[value]
        expanded: Set[FrozenSet[int]] = set()
        for product in products:
            for prime in alternatives:
                expanded.add(product | {prime})
        products = _absorb(expanded)
        if len(products) > _EXACT_LIMIT_PRODUCTS:
            # Blow-up guard: abandon exactness, keep the smallest seeds.
            products = set(
                sorted(products, key=lambda p: (len(p), sorted(p)))[
                    : _EXACT_LIMIT_PRODUCTS // 4
                ]
            )
    return set(min(products, key=lambda p: (len(p), sorted(p))))


def _absorb(products: Set[FrozenSet[int]]) -> Set[FrozenSet[int]]:
    """Drop any product that is a superset of another (absorption)."""
    kept: List[FrozenSet[int]] = []
    for product in sorted(products, key=len):
        if not any(other <= product for other in kept):
            kept.append(product)
    return set(kept)


def _greedy(
    primes: Sequence[Implicant], uncovered: Set[int]
) -> Set[int]:
    """Greedy set cover: repeatedly take the prime covering the most
    still-uncovered minterms (ties: fewer literals, then stable order)."""
    remaining = set(uncovered)
    chosen: Set[int] = set()
    while remaining:
        best_index = -1
        best_key: Tuple[int, int, int] = (0, 0, 0)
        for i, prime in enumerate(primes):
            if i in chosen:
                continue
            gain = sum(1 for value in remaining if prime.covers(value))
            if gain == 0:
                continue
            key = (gain, -prime.literal_count(), -i)
            if best_index < 0 or key > best_key:
                best_index, best_key = i, key
        if best_index < 0:
            raise InvalidArgumentError("uncoverable minterms remain in greedy cover")
        chosen.add(best_index)
        remaining = {
            value
            for value in remaining
            if not primes[best_index].covers(value)
        }
    return chosen
