"""Group-set index over multiple attributes (Section 4 of the paper).

A group-set index serves GROUP BY: it must select the rows of any
combination of grouping values.  Simple bitmaps need one vector per
combination (the paper's example: cardinalities 100 x 200 x 500 give
10^7 vectors); the encoded construction keeps one encoded bitmap
index per attribute and evaluates a combination as the AND of the
per-attribute retrieval expressions — ``ceil(log2 100) +
ceil(log2 200) + ceil(log2 500) = 7 + 8 + 9 = 24`` vectors in total
(the paper rounds its example to 20).

With hierarchy encodings on the member indexes, group sets over
hierarchy levels are computed at run time — the dynamic group-set
capability Section 4 highlights.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.bitmap.bitvector import BitVector
from repro.encoding.mapping import MappingTable
from repro.errors import IndexBuildError
from repro.index.base import (
    IndexStatistics,
    LookupCost,
    deprecated_keyword,
    deprecated_positionals,
)
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList
from repro.table.table import Table


class GroupSetIndex:
    """Encoded bitmap indexes over the grouping attributes.

    Parameters
    ----------
    table:
        The fact table.
    column_names:
        Grouping attributes, in GROUP BY order.
    encodings:
        Optional per-column :class:`MappingTable` overrides (e.g.
        hierarchy encodings).  ``mappings=`` is the deprecated alias.
    """

    kind = "group-set"

    def __init__(
        self,
        table: Table,
        column_names: Sequence[str],
        *args: Any,
        encodings: Optional[Dict[str, MappingTable]] = None,
        registry: Optional[MetricsRegistry] = None,
        mappings: Optional[Dict[str, MappingTable]] = None,
    ) -> None:
        if not column_names:
            raise IndexBuildError("group-set index needs >= 1 column")
        legacy = deprecated_positionals(
            type(self).__name__, args, ("encodings",)
        )
        encodings = legacy.get("encodings", encodings)
        if mappings is not None:
            encodings = deprecated_keyword(
                type(self).__name__, "mappings", "encodings", mappings
            )
        self.table = table
        self.column_names = list(column_names)
        encodings = encodings or {}
        self.members: Dict[str, EncodedBitmapIndex] = {
            name: EncodedBitmapIndex(
                table,
                name,
                encoding=encodings.get(name),
                registry=registry,
            )
            for name in self.column_names
        }
        self.stats = IndexStatistics()
        self.last_cost = LookupCost()

    # ------------------------------------------------------------------
    @property
    def vector_count(self) -> int:
        """Total bitmap vectors kept — sum of ceil(log2 m_i)."""
        return sum(index.width for index in self.members.values())

    @staticmethod
    def simple_vector_count(cardinalities: Sequence[int]) -> int:
        """Vectors a simple group-set bitmap index would need.

        One per combination: the product of the cardinalities — the
        paper's 10^7 example.
        """
        product = 1
        for m in cardinalities:
            product *= m
        return product

    def nbytes(self) -> int:
        return sum(index.nbytes() for index in self.members.values())

    # ------------------------------------------------------------------
    def group_vector(self, combination: Dict[str, Any]) -> BitVector:
        """Rows matching one grouping combination (AND of members)."""
        cost = LookupCost()
        result: Optional[BitVector] = None
        for name, value in combination.items():
            index = self.members[name]
            vector = index.lookup(Equals(name, value))
            cost.vectors_accessed += index.last_cost.vectors_accessed
            result = vector if result is None else (result & vector)
        if result is None:
            result = BitVector(len(self.table))
        self.last_cost = cost
        self.stats.record(cost)
        return result

    def groups(self) -> Iterator[Tuple[Tuple[Any, ...], BitVector]]:
        """Enumerate non-empty groups present in the data.

        Scans once to find the occurring combinations (the paper's
        density point: only ~10% of the cross product may be
        meaningful), then yields each with its row vector.
        """
        occurring: Dict[Tuple[Any, ...], List[int]] = {}
        columns = [self.table.column(name) for name in self.column_names]
        void = self.table.void_rows()
        for row_id in range(len(self.table)):
            if row_id in void:
                continue
            key = tuple(column[row_id] for column in columns)
            occurring.setdefault(key, []).append(row_id)
        nbits = len(self.table)
        for key in sorted(occurring, key=str):
            yield key, BitVector.from_indices(occurring[key], nbits)

    def group_by(
        self, aggregate_column: Optional[str] = None
    ) -> Dict[Tuple[Any, ...], float]:
        """COUNT(*) (or SUM(aggregate_column)) per group."""
        results: Dict[Tuple[Any, ...], float] = {}
        aggregate = (
            self.table.column(aggregate_column)
            if aggregate_column is not None
            else None
        )
        for key, vector in self.groups():
            if aggregate is None:
                results[key] = float(vector.count())
            else:
                total = 0.0
                for row_id in vector.indices():
                    value = aggregate[int(row_id)]
                    if value is not None:
                        total += value
                results[key] = total
        return results

    def rollup_group_by(
        self,
        column_name: str,
        hierarchy,
        level: str,
        aggregate_column: Optional[str] = None,
    ) -> Dict[Any, float]:
        """GROUP BY a *hierarchy level* computed at run time.

        Section 4: "if hierarchy encoding is applied, groupset indexes
        can be dynamically calculated at run-time".  For each element
        of ``level`` the member IN-list selects rows through the
        (ideally hierarchy-encoded) member index; COUNT(*) or
        SUM(aggregate_column) is computed per element without any
        precomputed group-set.

        With m:N hierarchies an element's groups may overlap (the
        paper's branches 3 and 4 belong to companies a *and* d), so
        the per-element results may sum to more than the table total.
        """
        from repro.query.predicates import InList

        index = self.members[column_name]
        aggregate = (
            self.table.column(aggregate_column)
            if aggregate_column is not None
            else None
        )
        results: Dict[Any, float] = {}
        for element in hierarchy.elements(level):
            members = sorted(
                hierarchy.base_members(level, element), key=str
            )
            vector = index.lookup(InList(column_name, members))
            if aggregate is None:
                results[element] = float(vector.count())
            else:
                total = 0.0
                for row_id in vector.indices():
                    value = aggregate[int(row_id)]
                    if value is not None:
                        total += value
                results[element] = total
        return results

    def __repr__(self) -> str:
        return (
            f"GroupSetIndex(columns={self.column_names}, "
            f"vectors={self.vector_count})"
        )
