"""Paged variants of the bitmap indexes.

These subclasses route every vector access through a
:class:`~repro.storage.vector_store.PagedVectorStore`, so the
simulated disk's I/O statistics reflect the paper's claims at the
page level: an encoded index reads ``c_e * pages_per_vector`` pages
per query, a simple index ``c_s * pages_per_vector`` — with the
buffer pool absorbing repeats.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.bitmap.bitvector import BitVector
from repro.boolean.evaluator import AccessCounter, evaluate_dnf
from repro.boolean.reduction import ReducedFunction
from repro.encoding.mapping import MappingTable
from repro.index.base import LookupCost, deprecated_positionals
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.storage.page import PAGE_SIZE_DEFAULT
from repro.storage.vector_store import PagedVectorStore
from repro.table.table import Table


class PagedEncodedBitmapIndex(EncodedBitmapIndex):
    """Encoded bitmap index whose vectors live on simulated pages.

    The in-memory vectors remain the write path (maintenance mutates
    them, then flushes the dirty vector); queries *read* through the
    store so page I/O is counted.
    """

    kind = "encoded-bitmap-paged"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        encoding: Optional[MappingTable] = None,
        store: Optional[PagedVectorStore] = None,
        page_size: int = PAGE_SIZE_DEFAULT,
        pool_capacity: int = 64,
        **kwargs: Any,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__,
            args,
            ("encoding", "page_size", "pool_capacity"),
        )
        encoding = legacy.get("encoding", encoding)
        page_size = legacy.get("page_size", page_size)
        pool_capacity = legacy.get("pool_capacity", pool_capacity)
        self._store: Optional[PagedVectorStore] = None
        super().__init__(table, column_name, encoding=encoding, **kwargs)
        # A caller-supplied store lets each partition of a
        # PartitionedIndex keep its own pager/buffer pool.
        self._store = (
            store
            if store is not None
            else PagedVectorStore(
                page_size=page_size, pool_capacity=pool_capacity
            )
        )
        self._flush_all()

    # ------------------------------------------------------------------
    @property
    def store(self) -> PagedVectorStore:
        return self._store

    def _flush_all(self) -> None:
        for i, vector in enumerate(self._vectors):
            self._store.store(i, vector)

    def _flush(self, i: int) -> None:
        if self._store is not None:
            self._store.update(i, self._vectors[i])

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        function: ReducedFunction,
        cost: LookupCost,
        *,
        version: Optional[int] = None,
    ) -> Optional[BitVector]:
        if self._store is None:  # during construction
            return super()._evaluate(function, cost, version=version)
        counter = AccessCounter()
        # Same optimistic-read discipline as the base class: refuse
        # to evaluate a function derived from a superseded mapping
        # (the store's page layout tracks the vector widths).
        with self._lock:
            if version is not None and version != self._data_version:
                return None
        result = evaluate_dnf(
            function,
            lambda i: self._store.load(i),
            self._row_count(),
            counter,
        )
        cost.vectors_accessed += counter.distinct_accesses
        if self._exists_vector is not None:
            cost.vectors_accessed += 1
            result &= self._exists_vector
        return result

    # ------------------------------------------------------------------
    # maintenance: mutate in memory, then write back the dirty vectors
    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        super().on_append(row_id, row)
        if self._store is not None:
            self._flush_all()

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        super()._apply_update(row_id, old, new)
        if self._store is not None:
            self._flush_all()

    def on_delete(self, row_id: int) -> None:
        super().on_delete(row_id)
        if self._store is not None:
            self._flush_all()


class PagedSimpleBitmapIndex(SimpleBitmapIndex):
    """Simple bitmap index reading its value vectors from pages."""

    kind = "simple-bitmap-paged"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        store: Optional[PagedVectorStore] = None,
        page_size: int = PAGE_SIZE_DEFAULT,
        pool_capacity: int = 64,
        **kwargs: Any,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__, args, ("page_size", "pool_capacity")
        )
        page_size = legacy.get("page_size", page_size)
        pool_capacity = legacy.get("pool_capacity", pool_capacity)
        self._store: Optional[PagedVectorStore] = None
        super().__init__(table, column_name, **kwargs)
        self._store = (
            store
            if store is not None
            else PagedVectorStore(
                page_size=page_size, pool_capacity=pool_capacity
            )
        )
        for value, vector in self._vectors.items():
            self._store.store(value, vector)

    @property
    def store(self) -> PagedVectorStore:
        return self._store

    def _fetch_value(
        self, value: Any, nbits: int, cost: LookupCost
    ) -> BitVector:
        if self._store is None or value not in self._store:
            return super()._fetch_value(value, nbits, cost)
        cost.vectors_accessed += 1
        return self._store.load(value)

    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        super().on_append(row_id, row)
        if self._store is not None:
            for value, vector in self._vectors.items():
                self._store.update(value, vector)
