"""Common index interface and statistics.

Every index maps a :class:`~repro.query.predicates.Predicate` on its
column to a result :class:`~repro.bitmap.bitvector.BitVector` over the
table's rows, and maintains itself through the table's observer hooks
(`on_append` / `on_update` / `on_delete`).

Cost accounting follows the paper: :class:`IndexStatistics` records
*vectors accessed* (for bitmap family indexes), *node accesses* (for
tree indexes) and raw bytes, and each ``lookup`` stores the cost of
the most recent query in ``last_cost`` so benches can read it off
directly.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.bitmap.bitvector import BitVector
from repro.errors import UnsupportedPredicateError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.query.snapshot import snapshot_rows
from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    IsNull,
    NotPredicate,
    OrPredicate,
    Predicate,
    Range,
)
from repro.table.table import Table


@dataclass
class LookupCost:
    """Cost of one lookup, in the paper's units."""

    vectors_accessed: int = 0
    node_accesses: int = 0
    rows_checked: int = 0

    def total_accesses(self) -> int:
        return self.vectors_accessed + self.node_accesses


def deprecated_positionals(
    class_name: str,
    args: Tuple[Any, ...],
    names: Sequence[str],
) -> Dict[str, Any]:
    """Shim for pre-normalization positional constructor arguments.

    Index constructors accept ``(table, column_name)`` positionally;
    everything else is keyword-only since the signature normalization
    (``encoding=``, ``store=``, ``registry=`` in that order, then
    kind-specific options).  Old call sites that still pass extras
    positionally land here: the values are mapped onto their keyword
    names and a :class:`DeprecationWarning` fires (ebilint rule EBI206
    flags such calls in-repo).
    """
    if not args:
        return {}
    if len(args) > len(names):
        raise TypeError(
            f"{class_name} takes at most {2 + len(names)} positional "
            f"arguments ({2 + len(args)} given)"
        )
    shown = ", ".join(f"{name}=" for name in names[: len(args)])
    warnings.warn(
        f"{class_name}: positional arguments beyond "
        f"(table, column_name) are deprecated; pass {shown} as "
        f"keyword(s)",
        DeprecationWarning,
        stacklevel=3,
    )
    return dict(zip(names, args))


def deprecated_keyword(
    class_name: str, old: str, new: str, value: Any
) -> Any:
    """Warn-and-forward for a renamed keyword (``mapping=`` ->
    ``encoding=``); returns ``value`` so callers can assign it."""
    warnings.warn(
        f"{class_name}: the {old}= keyword is deprecated; "
        f"use {new}=",
        DeprecationWarning,
        stacklevel=3,
    )
    return value


@dataclass
class IndexStatistics:
    """Cumulative counters across an index's lifetime."""

    lookups: int = 0
    vectors_accessed: int = 0
    node_accesses: int = 0
    rows_checked: int = 0
    maintenance_ops: int = 0

    def record(self, cost: LookupCost) -> None:
        # Owner-guarded: each IndexStatistics belongs to exactly one
        # index and every mutation site runs under that owner's lock.
        # The owners use *different* locks (Index._lock vs
        # BitmapJoinIndex._lock), so ebilint's whole-program held-lock
        # intersection comes up empty — a documented precision limit
        # (docs/concurrency.md), hence the per-line suppressions.
        self.lookups += 1  # ebilint: disable=EBI301
        self.vectors_accessed += cost.vectors_accessed  # ebilint: disable=EBI301
        self.node_accesses += cost.node_accesses  # ebilint: disable=EBI301
        self.rows_checked += cost.rows_checked  # ebilint: disable=EBI301

    def reset(self) -> None:
        self.lookups = 0
        self.vectors_accessed = 0
        self.node_accesses = 0
        self.rows_checked = 0
        self.maintenance_ops = 0


class Index:
    """Abstract base class for all indexes.

    Subclasses implement ``_lookup`` for the leaf predicate types they
    support; Boolean combinations (AND/OR/NOT over the *same* column)
    are handled here by combining result vectors — the cooperativity
    property of Section 2.1.
    """

    #: Human-readable kind, e.g. "encoded-bitmap"; set by subclasses.
    kind: str = "abstract"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.table = table  # ebi: shared-readonly
        self.column_name = column_name  # ebi: shared-readonly
        #: Metrics sink for this index's lookups; ``None`` (default)
        #: resolves the calling thread's current registry per lookup.
        self.registry = registry  # ebi: shared-readonly
        #: Guards every mutable field shared across ParallelExecutor
        #: workers: stats, trace attributes, and subclass caches.
        #: Reentrant so a locked public entry point may call other
        #: locked helpers (see docs/concurrency.md).
        self._lock = threading.RLock()
        self.stats = IndexStatistics()
        self.last_cost = LookupCost()
        #: Set by :func:`repro.index.verify.verify_index` when the
        #: index fails fsck; the planner then refuses to serve
        #: predicates from it and falls back to a table scan.
        self.degraded = False
        #: Trace detail of the most recent lookup, filled in by
        #: subclasses that know it (the encoded index records which
        #: of its ``k`` vectors the reduced expression touched, the
        #: reduction itself, and whether it came from the cache);
        #: consumed by the executor when building a
        #: :class:`~repro.obs.trace.QueryTrace`.
        self.last_touched: Tuple[int, ...] = ()
        self.last_reduction: Optional[Any] = None
        self.last_cache_hit: Optional[bool] = None

    # ------------------------------------------------------------------
    # public lookup API
    # ------------------------------------------------------------------
    def lookup(self, predicate: Predicate) -> BitVector:
        """Evaluate a predicate into a row bit vector.

        Records the per-query cost in ``self.last_cost`` and folds it
        into ``self.stats``.

        Concurrency: trace attributes and cumulative statistics are
        guarded by ``self._lock``; predicate evaluation itself runs
        outside the critical section (subclasses take the lock around
        their own shared state), and metrics publishing happens after
        all locks are released.  Trace attributes are last-query-wins
        under concurrent lookups — read them on the same thread that
        issued the lookup.
        """
        with self._lock:
            self.last_touched = ()
            self.last_reduction = None
            self.last_cache_hit = None
        cost = LookupCost()
        result = self._dispatch(predicate, cost)
        # Snapshot discipline: when the calling batch pinned a row
        # watermark (repro.query.snapshot), clamp the result to it so
        # every predicate in the batch sees the same row universe even
        # while a concurrent ingester grows the table.
        pinned = snapshot_rows(self.table)
        if pinned is not None and len(result) > pinned:
            result.resize(pinned)
        with self._lock:
            self.last_cost = cost
            self.stats.record(cost)
        registry = (
            self.registry if self.registry is not None else get_registry()
        )
        registry.counter("index.lookups").inc()
        if cost.vectors_accessed:
            registry.counter("index.vectors_accessed").inc(
                cost.vectors_accessed
            )
        if cost.node_accesses:
            registry.counter("index.node_accesses").inc(cost.node_accesses)
        if cost.rows_checked:
            registry.counter("index.rows_checked").inc(cost.rows_checked)
        return result

    def _dispatch(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        if isinstance(predicate, NotPredicate):
            inner = self._dispatch(predicate.operand, cost)
            result = ~inner
            # A negation must still exclude void rows.  Rows voided
            # after the inner vector was sized (concurrent ingest)
            # are beyond its length — the snapshot clamp in
            # :meth:`lookup` owns those.
            void = self.table.void_rows()
            for row_id in void:
                if row_id < len(result):
                    result[row_id] = False
            return result
        if isinstance(predicate, AndPredicate):
            result = self._dispatch(predicate.operands[0], cost)
            for operand in predicate.operands[1:]:
                result &= self._dispatch(operand, cost)
            return result
        if isinstance(predicate, OrPredicate):
            result = self._dispatch(predicate.operands[0], cost)
            for operand in predicate.operands[1:]:
                result |= self._dispatch(operand, cost)
            return result
        if predicate.columns() != frozenset((self.column_name,)):
            raise UnsupportedPredicateError(
                f"index on {self.column_name!r} cannot evaluate "
                f"{predicate}"
            )
        return self._lookup(predicate, cost)

    # ------------------------------------------------------------------
    # subclass surface
    # ------------------------------------------------------------------
    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        """Evaluate a leaf predicate on this index's column."""
        raise NotImplementedError

    def nbytes(self) -> int:
        """Index size in bytes (the paper's space measure)."""
        raise NotImplementedError

    def supports(self, predicate: Predicate) -> bool:
        """Can this index evaluate the given leaf predicate type?"""
        return isinstance(predicate, (Equals, InList, Range, IsNull))

    def rebuild(self) -> None:
        """Rebuild from the base table after a physical row reorder.

        :func:`repro.shard.reorder.reorder_table` permutes a table's
        rows in place and then asks every attached observer to rebuild;
        index kinds that support it override this with an atomic
        swap-under-lock (see
        :meth:`repro.index.encoded_bitmap.EncodedBitmapIndex.rebuild`).
        The base implementation refuses, so a reorder can never leave
        an unsupported index silently stale.
        """
        raise NotImplementedError(
            f"{type(self).__name__} cannot rebuild after a row reorder"
        )

    # ------------------------------------------------------------------
    # maintenance hooks (table observer protocol)
    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        """A row was appended to the table."""
        raise NotImplementedError

    def on_update(
        self, row_id: int, column_name: str, old: Any, new: Any
    ) -> None:
        """A row attribute changed."""
        if column_name != self.column_name:
            return
        self._apply_update(row_id, old, new)

    def on_delete(self, row_id: int) -> None:
        """A row became void."""
        raise NotImplementedError

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _row_count(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(table={self.table.name!r}, "
            f"column={self.column_name!r})"
        )


def range_values(column_values, predicate: Range) -> list:
    """Distinct column values satisfying a range predicate.

    Used by discrete-domain indexes that rewrite ranges into IN-lists,
    as the paper prescribes for discrete domains.
    """
    selected = []
    for value in column_values:
        if value is None:
            continue
        if predicate.matches({predicate.column: value}):
            selected.append(value)
    return selected
