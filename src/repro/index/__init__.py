"""Index structures.

``EncodedBitmapIndex`` is the paper's contribution; every other index
here is a comparator the paper discusses: simple bitmaps (O'Neil,
Model 204), B+trees, projection and bit-sliced indexes (O'Neil &
Quass), value-list/inverted indexes, dynamic bitmaps (Sarawagi),
range-based bitmaps (Wu & Yu), the hybrid B-tree/bitmap, and the
group-set index built from encoded bitmaps.
"""

from repro.index.base import Index, IndexStatistics, LookupCost
from repro.index.bitsliced import BitSlicedIndex
from repro.index.btree import BPlusTreeIndex
from repro.index.compressed import CompressedBitmapIndex
from repro.index.dynamic_bitmap import DynamicBitmapIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.groupset import GroupSetIndex
from repro.index.hybrid import HybridBitmapBTreeIndex
from repro.index.join_index import BitmapJoinIndex
from repro.index.paged import PagedEncodedBitmapIndex, PagedSimpleBitmapIndex
from repro.index.projection import ProjectionIndex
from repro.index.range_bitmap import RangeBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.index.value_list import ValueListIndex
from repro.index.verify import (
    FsckReport,
    Violation,
    repair,
    verify_index,
    verify_payload,
)

__all__ = [
    "BPlusTreeIndex",
    "BitSlicedIndex",
    "BitmapJoinIndex",
    "CompressedBitmapIndex",
    "DynamicBitmapIndex",
    "EncodedBitmapIndex",
    "FsckReport",
    "GroupSetIndex",
    "HybridBitmapBTreeIndex",
    "Index",
    "IndexStatistics",
    "LookupCost",
    "PagedEncodedBitmapIndex",
    "PagedSimpleBitmapIndex",
    "ProjectionIndex",
    "RangeBitmapIndex",
    "SimpleBitmapIndex",
    "ValueListIndex",
    "Violation",
    "repair",
    "verify_index",
    "verify_payload",
]
