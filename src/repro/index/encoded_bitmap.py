"""Encoded bitmap index — the paper's contribution (Definition 2.1).

``k = ceil(log2 m)`` bitmap vectors, a one-to-one mapping table, and
retrieval Boolean functions.  A selection ORs the minterms of the
selected codes, logically reduces the expression (unused codes are
don't-cares), and reads only the surviving vectors — the measured
``c_e`` of Section 3.

Void/NULL handling follows Section 2.2's recommended scheme: both are
encoded *together with* the domain values, void at code 0
(Theorem 2.1), so no separate existence vector is ever consulted.
The alternative scheme (explicit ``B_NotExist``/``B_NULL`` vectors)
is selectable for the ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.boolean.evaluator import AccessCounter, evaluate_dnf
from repro.boolean.reduction import (
    ReducedFunction,
    minterm_dnf,
    reduce_values,
    reduce_values_cached,
)
from repro.encoding.mapping import NULL, VOID, MappingTable
from repro.errors import (
    IndexBuildError,
    InvalidArgumentError,
    UnsupportedPredicateError,
)
from repro.faults.crash import crash_point
from repro.index.base import (
    Index,
    LookupCost,
    deprecated_keyword,
    deprecated_positionals,
    range_values,
)
from repro.kernels import (
    CompiledKernel,
    CompressedPlaneSet,
    MappedPlaneSet,
    PlaneSet,
    PlaneSnapshot,
    compile_function,
    write_plane_file,
)
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.query.options import kernel_override_value
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.query.snapshot import snapshot_rows
from repro.table.table import Table


class EncodedBitmapIndex(Index):
    """The encoded bitmap index ``B^A = ({B_i}, M^A, {f_a})``.

    Parameters
    ----------
    table, column_name:
        The indexed column (the only positional parameters; everything
        below is keyword-only).
    encoding:
        Optional pre-built :class:`MappingTable` (e.g. from
        :func:`~repro.encoding.heuristics.encode_for_predicates` or a
        hierarchy/total-order/range encoding).  When omitted, a
        sequential encoding of the column's current domain is used.
        (``mapping=`` is the deprecated spelling.)
    registry:
        Optional metrics registry for this index's lookups; defaults
        to the calling thread's current registry per lookup.
    void_mode:
        ``"encode"`` (default) reserves code 0 for void tuples per
        Theorem 2.1; ``"vector"`` keeps an explicit existence vector
        instead (the paper's "simple way", kept for ablation).
    null_mode:
        ``"encode"`` (default) gives NULL its own code; ``"vector"``
        keeps an explicit ``B_NULL``.
    exact_reduction:
        Use exact minimal covers during logical reduction (disable for
        very wide indexes where greedy covers are preferred).
    use_kernels:
        Evaluate reduced functions through compiled word-level kernels
        (:mod:`repro.kernels`) instead of the tree-walking
        ``evaluate_dnf``.  On by default; ``False`` restores the full
        legacy reference configuration — tree-walk evaluation *and*
        per-index-only reduction memoisation (the process-wide
        reduction cache is bypassed), which differential tests and
        ablation benches compare against.  Access accounting (``c_e``)
        is bit-identical either way.
    plane_format:
        ``"packed"`` (default) snapshots the planes into a dense
        :class:`~repro.kernels.planes.PlaneSet` matrix;
        ``"compressed"`` snapshots them into a word-aligned-run
        :class:`~repro.kernels.runs.CompressedPlaneSet` instead, so
        kernels evaluate run-at-a-time (``docs/compression.md``).
        Results and ``c_e`` are bit-identical either way; the
        compressed format wins on memory — dramatically so after a
        :mod:`repro.shard.reorder` pass — at some per-query cost on
        incompressible data.
    """

    kind = "encoded-bitmap"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        encoding: Optional[MappingTable] = None,
        registry: Optional[MetricsRegistry] = None,
        void_mode: str = "encode",
        null_mode: str = "encode",
        exact_reduction: bool = True,
        use_kernels: bool = True,
        plane_format: str = "packed",
        mapping: Optional[MappingTable] = None,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__,
            args,
            ("encoding", "void_mode", "null_mode", "exact_reduction"),
        )
        encoding = legacy.get("encoding", encoding)
        void_mode = legacy.get("void_mode", void_mode)
        null_mode = legacy.get("null_mode", null_mode)
        exact_reduction = legacy.get("exact_reduction", exact_reduction)
        if mapping is not None:
            encoding = deprecated_keyword(
                type(self).__name__, "mapping", "encoding", mapping
            )
        super().__init__(table, column_name, registry=registry)
        if void_mode not in ("encode", "vector"):
            raise InvalidArgumentError(f"bad void_mode {void_mode!r}")
        if null_mode not in ("encode", "vector"):
            raise InvalidArgumentError(f"bad null_mode {null_mode!r}")
        self.void_mode = void_mode
        self.null_mode = null_mode
        self.exact_reduction = exact_reduction
        self._mapping = (  # ebi: versioned
            encoding if encoding is not None else self._default_mapping()
        )
        self._validate_mapping()
        self._vectors: List[BitVector] = [  # ebi: versioned
            BitVector(len(table)) for _ in range(self._mapping.width)
        ]
        self._exists_vector: Optional[BitVector] = (
            BitVector(len(table)) if void_mode == "vector" else None
        )
        self._null_vector: Optional[BitVector] = (
            BitVector(len(table)) if null_mode == "vector" else None
        )
        self._init_caches(use_kernels=use_kernels, plane_format=plane_format)
        self._build()

    def _init_caches(
        self, use_kernels: bool = True, plane_format: str = "packed"
    ) -> None:
        """Set up the lookup-side cache state.

        Factored out of ``__init__`` because deserialisation
        (:func:`repro.index.serialization.loads`) restores an index via
        ``__new__`` and must initialise the same state.
        """
        self._use_kernels = use_kernels
        if plane_format not in ("packed", "compressed"):
            raise InvalidArgumentError(
                f"bad plane_format {plane_format!r}"
            )
        self.plane_format = plane_format
        self._reduction_cache: Dict[
            Tuple[Tuple[int, ...], int], ReducedFunction
        ] = {}
        # Compiled-kernel cache: keyed by the reduced function, cleared
        # whenever the mapping changes (codes, and therefore every
        # future key, change with it).  Delegates to the process-wide
        # compile cache on miss, so partitions sharing a mapping also
        # share kernels.
        self._kernel_cache: Dict[ReducedFunction, CompiledKernel] = {}
        # Plane snapshot consumed by kernels (packed or compressed per
        # ``plane_format``), rebuilt when the data version moves (any
        # write to the indexed column).
        self._planes: Optional[PlaneSnapshot] = None
        self._planes_version = -1
        self._data_version = 0
        self.plane_rebuilds = 0
        # Delta tier (arrival-order, per Section 4's dynamic scheme):
        # rows appended since the planes were last built live here as
        # row -> code, matched per row at query time and folded into
        # the packed planes by compact().  The bitmap vectors stay
        # authoritative throughout (serialization/fsck read them, not
        # the delta), so any plane rebuild doubles as a compaction.
        # ``_delta_seq`` is the delta half of the epoch: it moves under
        # the lock on every delta mutation, where ``_data_version``
        # only moves on mapping/plane identity changes — appends no
        # longer thrash the kernel caches.
        self._delta: Dict[int, int] = {}  # ebi: versioned
        self._delta_seq = 0
        self._base_rows = 0
        self.compactions = 0
        # Out-of-core residency accounting (docs/out_of_core.md):
        # spills swap the dense snapshot for a memory-mapped one,
        # promotions copy it back.  Plain attributes, like
        # ``plane_rebuilds`` — constant per-lookup instrumentation.
        self.plane_spills = 0
        self.plane_promotions = 0

    @property
    def use_kernels(self) -> bool:
        """Whether lookups take the compiled-kernel path.

        The per-query thread-local override installed by
        :func:`repro.query.options.kernel_override` (the
        ``QueryOptions.use_kernels`` knob) wins over the index's own
        construction-time setting, so ablation runs can force the
        legacy tree walk for one query without mutating shared index
        state.
        """
        override = kernel_override_value()
        if override is not None:
            return override
        return self._use_kernels

    @use_kernels.setter
    def use_kernels(self, value: bool) -> None:
        self._use_kernels = bool(value)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _default_mapping(self) -> MappingTable:
        column = self.table.column(self.column_name)
        values = sorted(column.distinct_values(), key=str)
        table = MappingTable.from_values(
            values,
            reserve_void_zero=(self.void_mode == "encode"),
            include_null=(
                self.null_mode == "encode" and column.has_nulls()
            ),
        )
        return table

    def _validate_mapping(self) -> None:
        column = self.table.column(self.column_name)
        missing = column.distinct_values() - set(self._mapping.values())
        if missing:
            raise IndexBuildError(
                f"mapping does not cover values "
                f"{sorted(map(str, missing))[:5]}"
            )
        if self.void_mode == "encode" and VOID not in self._mapping:
            if self._mapping.has_code(0):
                raise IndexBuildError(
                    "void_mode='encode' requires code 0 reserved for VOID"
                )
            self._mapping.assign(VOID, 0)
        if (
            self.null_mode == "encode"
            and column.has_nulls()
            and NULL not in self._mapping
        ):
            self._mapping.assign(NULL, self._mapping.next_free_code())

    def _build(self) -> None:
        """Bulk-build the bit planes from the current table contents.

        One Python pass computes the per-row code array; the planes are
        then sliced out of it with vectorised shifts (one
        :meth:`BitVector.from_mask` per plane) instead of ``k``
        single-bit writes per row — the difference between seconds and
        minutes on the million-row bench tables.
        """
        n = self._row_count()
        if n == 0:
            return
        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        void_code = self._void_code()
        codes = np.empty(n, dtype=np.uint64)
        null_rows: List[int] = []
        for row_id in range(n):
            if row_id in void:
                codes[row_id] = void_code
            else:
                value = column[row_id]
                codes[row_id] = self._code_for(value)
                if value is None and self._null_vector is not None:
                    null_rows.append(row_id)
        for i in range(len(self._vectors)):
            mask = (codes >> np.uint64(i)) & np.uint64(1)
            # One bulk allocation per *plane* (k total), not per row —
            # this is the hoisted form EBI102 pushes loops towards.
            self._vectors[i] = BitVector.from_mask(mask != 0)  # ebilint: disable=EBI102
        if self._exists_vector is not None:
            exists = np.ones(n, dtype=bool)
            exists[list(void)] = False
            self._exists_vector = BitVector.from_mask(exists)
        if self._null_vector is not None:
            self._null_vector = BitVector.from_indices(null_rows, n)
        self._data_version += 1

    def _void_code(self) -> int:
        if self.void_mode == "encode":
            return self._mapping.encode(VOID)
        return 0

    def _code_for(self, value: Any) -> int:
        if value is None:
            if self.null_mode == "encode":
                return self._mapping.encode(NULL)
            return 0
        return self._mapping.encode(value)

    def _write_row(self, row_id: int, value: Any) -> None:
        self._write_code(row_id, self._code_for(value))
        if value is None and self._null_vector is not None:
            self._null_vector[row_id] = True

    def _write_code(self, row_id: int, code: int) -> None:
        with self._lock:
            self._write_code_raw(row_id, code)
            self._data_version += 1

    def _write_code_raw(self, row_id: int, code: int) -> None:  # ebilint: disable=EBI302
        """Set one row's bits across the planes; caller holds the lock
        and owns the matching epoch bump (``_data_version`` for base
        rows, ``_delta_seq`` for delta rows) — hence the protocol-rule
        suppression on this deliberately dirty helper."""
        for i, vector in enumerate(self._vectors):
            vector[row_id] = bool((code >> i) & 1)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def mapping(self) -> MappingTable:
        return self._mapping

    @property
    def width(self) -> int:
        """``k`` — the number of bitmap vectors."""
        return self._mapping.width

    @property
    def vector_count(self) -> int:
        extra = (1 if self._exists_vector is not None else 0) + (
            1 if self._null_vector is not None else 0
        )
        return self.width + extra

    def vector(self, i: int) -> BitVector:
        """Direct (uncounted) access to bitmap vector ``B_i``."""
        return self._vectors[i]

    def retrieval_function(self, value: Any) -> ReducedFunction:
        """The k-variable minterm ``f_value`` of Definition 2.1."""
        code = self._code_for(value)
        return minterm_dnf([code], self.width)

    #: Above this many selected codes, contiguous selections use the
    #: O(k) binary interval decomposition instead of Quine-McCluskey.
    INTERVAL_FAST_PATH_THRESHOLD = 192

    def reduced_function(self, values: Iterable[Any]) -> ReducedFunction:
        """Logically reduced retrieval expression for an IN-list."""
        codes = tuple(sorted(self._code_for(v) for v in values))
        key = (codes, self.width)
        with self._lock:
            cached = self._reduction_cache.get(key)
            self.last_cache_hit = cached is not None
        if cached is None:
            # Reduce outside the lock: Quine-McCluskey is the slow
            # path, and a duplicate reduction under contention is
            # benign (pure function of the key).  Registry counters
            # stay outside any critical section (EBI303).
            get_registry().counter("index.reduction_cache_misses").inc()
            cached = self._reduce_codes(codes)
            with self._lock:
                self._reduction_cache[key] = cached
        else:
            get_registry().counter("index.reduction_cache_hits").inc()
        return cached

    def _reduce_codes(self, codes: Tuple[int, ...]) -> ReducedFunction:
        if (
            len(codes) >= self.INTERVAL_FAST_PATH_THRESHOLD
            and codes[-1] - codes[0] == len(codes) - 1
        ):
            # Contiguous code interval: the binary decomposition gives
            # a near-minimal cover in O(k) where QM would be slow (and
            # cheap enough that the global cache is not worth a key).
            from repro.boolean.intervals import reduce_interval

            return reduce_interval(codes[0], codes[-1], self.width)
        if not self.use_kernels:
            # Legacy reference configuration: bypass the process-wide
            # cache so ablation benches measure the pre-kernel cost
            # model, where every index pays Quine-McCluskey itself.
            return reduce_values(
                codes,
                self.width,
                dont_cares=self._mapping.unused_codes(),
                exact=self.exact_reduction,
            )
        # Through the process-wide LRU: Quine-McCluskey runs once per
        # distinct (codes, width, don't-cares) shape, even when many
        # partition-local indexes share one mapping.
        return reduce_values_cached(
            codes,
            self.width,
            dont_cares=self._mapping.unused_codes(),
            exact=self.exact_reduction,
        )

    def average_density(self) -> float:
        """Mean density over the k vectors — ~1/2 per Section 3.1."""
        if not self._vectors:
            return 0.0
        return sum(v.density() for v in self._vectors) / len(self._vectors)

    def nbytes(self) -> int:
        per_vector = BitVector(self._row_count()).nbytes()
        return per_vector * self.vector_count

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def predicate_values(self, predicate: Predicate) -> List[Any]:
        """Domain values a leaf predicate selects (the paper's delta).

        Range predicates are rewritten into the discrete IN-list the
        paper prescribes; unknown values (never inserted, so absent
        from the mapping) are dropped.
        """
        if isinstance(predicate, Equals):
            values: List[Any] = [predicate.value]
        elif isinstance(predicate, InList):
            values = list(predicate.values)
        elif isinstance(predicate, Range):
            values = range_values(self._domain_values(), predicate)
        else:
            raise UnsupportedPredicateError(
                f"unsupported predicate {predicate}"
            )
        return [value for value in values if value in self._mapping]

    def explain_predicate(
        self, predicate: Predicate
    ) -> Optional[ReducedFunction]:
        """The reduced retrieval expression a lookup would evaluate.

        Used by :meth:`repro.query.planner.Plan.explain` — computing
        (or fetching from the reduction cache) the expression reads no
        bitmap vectors, so EXPLAIN never pays the query's I/O.
        Returns ``None`` for predicates served without a reduction
        (e.g. ``IsNull`` under an explicit NULL vector).
        """
        if isinstance(predicate, IsNull):
            if self._null_vector is not None or NULL not in self._mapping:
                return None
            return self.reduced_function([None])
        known = self.predicate_values(predicate)
        if not known:
            return ReducedFunction(terms=(), width=self.width)
        return self.reduced_function(known)

    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        if isinstance(predicate, IsNull):
            return self._lookup_null(cost)
        # Optimistic read (seqlock style): the reduced function is
        # derived from the mapping at ``version``; _evaluate refuses
        # to pair it with a plane snapshot from any *other* version
        # (a concurrent remap can change the plane width), so on a
        # conflict we rebuild against the new mapping and try again.
        # Writers always terminate, so the retry loop does too.
        while True:
            with self._lock:
                version = self._data_version
            known = self.predicate_values(predicate)
            if not known:
                break
            function = self.reduced_function(known)
            result = self._evaluate(function, cost, version=version)
            if result is not None:
                return result
        return BitVector(self._snapshot_rows())

    def _lookup_null(self, cost: LookupCost) -> BitVector:
        if self._null_vector is not None:
            cost.vectors_accessed += 1
            result = self._null_vector.copy()
            limit = self._snapshot_rows()
            if len(result) != limit:
                result.resize(limit)
            return result
        if NULL not in self._mapping:
            return BitVector(self._snapshot_rows())
        while True:
            with self._lock:
                version = self._data_version
            function = self.reduced_function([None])
            result = self._evaluate(function, cost, version=version)
            if result is not None:
                return result

    # ------------------------------------------------------------------
    # delta tier (incremental maintenance + snapshot epochs)
    # ------------------------------------------------------------------
    #: Delta entries tolerated before an append folds them into the
    #: packed planes inline (amortised: one rebuild per threshold
    #: appends instead of one cache invalidation per append).
    DELTA_COMPACT_THRESHOLD = 4096

    def _delta_active(self) -> bool:
        """Whether appends land in the delta tier.

        Requires the kernel path (the delta merges into a kernel
        result) and the Theorem 2.1 encodings — under the ablation
        ``"vector"`` modes the existence/NULL vectors must track every
        row eagerly anyway, so those configurations keep the legacy
        bump-per-write protocol.
        """
        return (
            self.use_kernels
            and self.void_mode == "encode"
            and self.null_mode == "encode"
        )

    def epoch(self) -> Tuple[int, int]:
        """The snapshot epoch ``(_data_version, _delta_seq)``.

        The first component moves on mapping/plane identity changes
        (remap, expansion, compaction), the second on every delta
        mutation; a batch that records the pair observes any later
        write as an epoch change.
        """
        with self._lock:
            return (self._data_version, self._delta_seq)

    def delta_rows(self) -> int:
        """Rows currently in the delta tier (0 after :meth:`compact`)."""
        with self._lock:
            return len(self._delta)

    def compact(self) -> bool:
        """Fold the delta into the packed planes (atomic hot-swap).

        Rebuilds the :class:`~repro.kernels.planes.PlaneSet` over all
        rows and swaps it in under the lock with a ``_data_version``
        bump, so an in-flight optimistic lookup that paired the old
        planes with the old version simply retries — it never sees a
        half-swapped state.  Returns ``True`` when a fold happened.
        Idempotent and cheap when there is nothing to fold.
        """
        if not self._delta_active():
            return False
        with self._lock:
            if (
                not self._delta
                and self._planes is not None
                and self._planes_version == self._data_version
            ):
                return False
            crash_point("index.compact.pre-swap")
            planes = self._build_planes()
            self._planes = planes
            self._data_version += 1
            self._planes_version = self._data_version
            self._base_rows = planes.nbits
            self._delta.clear()
            self._delta_seq += 1
            self.compactions += 1
            crash_point("index.compact.post-swap")
        return True

    def _delta_matches(self, function: ReducedFunction, limit: int) -> List[int]:
        """Delta rows below ``limit`` selected by ``function``.

        Caller holds the lock.  Per-row evaluation against the stored
        code touches no bitmap vector, so ``c_e`` stays exactly the
        reduced function's vector count — bit-identical to evaluating
        the same function over fully compacted planes.
        """
        return [
            row_id
            for row_id, code in self._delta.items()
            if row_id < limit and function.evaluate_value(code)
        ]

    def _vector_rows(self) -> int:
        """Rows this index has ingested — the vectors' own length.

        Differs from ``len(self.table)`` only inside the window where
        a concurrent append has extended the table's columns but this
        index's ``on_append`` has not run yet; the vectors are the
        universe every lock-guarded read here must use.
        """
        return len(self._vectors[0]) if self._vectors else 0

    def _snapshot_rows(self) -> int:
        """Result-universe length: the thread's pin, else all rows."""
        rows = self._vector_rows()
        pinned = snapshot_rows(self.table)
        if pinned is None:
            return rows
        return min(pinned, rows)

    def clear_caches(self) -> None:
        """Drop this index's memoised lookup state.

        Clears the reduction cache, the compiled-kernel cache and the
        plane snapshot; the bitmap vectors themselves are untouched and
        the next lookup rebuilds lazily.  Useful under memory pressure
        and for cold-cache benchmarking (process-wide caches are
        cleared separately via
        :func:`repro.boolean.reduction.clear_reduction_cache` /
        :func:`repro.kernels.clear_compile_cache`).
        """
        with self._lock:
            self._reduction_cache.clear()
            self._kernel_cache.clear()
            self._planes = None
            self._planes_version = -1

    #: Entries kept in the per-index compiled-kernel cache before it is
    #: reset wholesale (simple bound; the process-wide LRU behind it
    #: keeps recompiles cheap).
    KERNEL_CACHE_SIZE = 256

    def _kernel_for(self, function: ReducedFunction) -> CompiledKernel:
        """Compiled kernel for ``function`` via the two cache layers.

        No registry traffic of its own (the overhead contract in
        ``tests/test_obs.py`` bounds per-lookup instrumentation): the
        process-wide compile cache consulted on a local miss publishes
        ``kernels.compile_cache.hits``/``.misses``.
        """
        with self._lock:
            kernel = self._kernel_cache.get(function)
        if kernel is None:
            # Compile outside the lock (the process-wide cache behind
            # it publishes metrics); worst case two threads compile
            # the same pure function once each.
            kernel = compile_function(function)
            with self._lock:
                if len(self._kernel_cache) >= self.KERNEL_CACHE_SIZE:
                    self._kernel_cache.clear()
                self._kernel_cache[function] = kernel
        return kernel

    def _build_planes(self) -> PlaneSnapshot:
        """Snapshot the vectors per ``plane_format``; caller holds the
        lock (the vectors' own length is the coherent row universe)."""
        if self.plane_format == "compressed":
            return CompressedPlaneSet.from_vectors(
                self._vectors, self._vector_rows()
            )
        return PlaneSet.from_vectors(self._vectors, self._vector_rows())

    def planes(self) -> PlaneSnapshot:
        """The current plane snapshot (packed matrix or word-aligned
        runs, per the ``plane_format`` option) — public read surface
        for benches and the compression demo; rebuilds lazily like any
        lookup would."""
        return self._plane_snapshot()

    def _plane_snapshot(self) -> PlaneSnapshot:
        """The current planes as a kernel-consumable snapshot.

        Rebuilt only when ``_data_version`` has moved since the last
        snapshot — i.e. after any write to the indexed column.
        Rebuilds are counted on ``plane_rebuilds`` (a plain attribute,
        not a registry counter, keeping per-lookup instrumentation
        constant).
        """
        with self._lock:
            if (
                self._planes is None
                or self._planes_version != self._data_version
            ):
                # The vectors' own length, not ``len(self.table)``, is
                # the coherent row universe here: a concurrent append
                # extends the table's columns *before* this index's
                # on_append runs, and only the vectors are guarded by
                # the lock being held.
                self._planes = self._build_planes()
                self._planes_version = self._data_version
                # A full rebuild covers every row, so it doubles as a
                # compaction: the delta's rows are now in the planes.
                self._base_rows = self._planes.nbits
                if self._delta:
                    self._delta.clear()
                    self._delta_seq += 1
                self.plane_rebuilds += 1
            return self._planes

    @property
    def planes_mapped(self) -> bool:
        """Whether the current snapshot is memory-mapped (spilled)."""
        with self._lock:
            return isinstance(self._planes, MappedPlaneSet)

    def spill_planes(self, path: str) -> Optional[int]:
        """Swap the dense plane snapshot for a memory-mapped one.

        Writes the current packed snapshot to ``path`` as a
        CRC-headered plane file (``repro.kernels.mapped``) and installs
        a read-only ``np.memmap`` view in its place, freeing the dense
        matrix.  Lookups keep working unchanged — results and ``c_e``
        are bit-identical — with plane words paging in from disk on
        demand.

        Returns the plane-file size in bytes, or ``None`` when the
        snapshot is not a dense ``PlaneSet`` (compressed format, or
        already mapped) or a concurrent write moved the data version
        mid-spill (the stale file is left for the caller's directory
        hygiene; the fresh snapshot stays authoritative).

        The file write happens outside the index lock (the EBI303
        no-I/O-under-lock discipline); the swap re-validates
        ``_planes_version`` *and* snapshot identity under the lock, so
        a racing rebuild can never be clobbered by a stale map.
        """
        with self._lock:
            planes = self._plane_snapshot()
            version = self._planes_version
        if not isinstance(planes, PlaneSet):
            return None
        nbytes = write_plane_file(planes, path)
        mapped = MappedPlaneSet.open(path)
        with self._lock:
            if (
                self._planes is planes
                and self._planes_version == version
            ):
                self._planes = mapped
                self.plane_spills += 1
                return nbytes
        mapped.close()
        return None

    def promote_planes(self) -> Optional[int]:
        """Copy a memory-mapped snapshot back into dense RAM.

        The inverse of :meth:`spill_planes`, used when the residency
        budget allows a hot partition back into the dense tier.
        Returns the dense matrix size in bytes, or ``None`` when the
        snapshot is not mapped or a concurrent write raced the
        promotion.
        """
        with self._lock:
            planes = self._planes
            version = self._planes_version
        if not isinstance(planes, MappedPlaneSet):
            return None
        dense = planes.materialize()
        with self._lock:
            if (
                self._planes is planes
                and self._planes_version == version
            ):
                self._planes = dense
                self.plane_promotions += 1
                return dense.nbytes()
        return None

    def _evaluate(
        self,
        function: ReducedFunction,
        cost: LookupCost,
        *,
        version: Optional[int] = None,
    ) -> Optional[BitVector]:
        """Evaluate ``function`` over the current planes.

        When ``version`` is given, the plane snapshot is validated
        against it *under the same lock that guards the version* (the
        EBI302 coherence discipline): if a writer bumped
        ``_data_version`` after the function was derived, the pairing
        would be torn (e.g. a kernel compiled for the old plane
        width), so ``None`` is returned and the caller retries.
        """
        counter = AccessCounter()
        if self.use_kernels:
            with self._lock:
                if (
                    version is not None
                    and version != self._data_version
                ):
                    return None
                planes = self._plane_snapshot()
                limit = self._snapshot_rows()
                # Delta rows are matched per stored code under the
                # same lock acquisition that validated the version, so
                # (planes, delta, limit) is one coherent epoch.
                delta_hits = (
                    self._delta_matches(function, limit)
                    if self._delta
                    else []
                )
            result = self._kernel_for(function).evaluate(
                planes, counter
            )
            if len(result) != limit:
                # The plane snapshot is frozen at the last compaction
                # (``_base_rows``); grow to cover delta rows, or shrink
                # to the batch's pinned watermark.
                result.resize(limit)
            for row_id in delta_hits:
                result[row_id] = True
        else:
            # Reference configuration: reads the live vectors (the
            # snapshot copy would distort the ablation cost model);
            # coherent-width is still guaranteed by the version check.
            with self._lock:
                if (
                    version is not None
                    and version != self._data_version
                ):
                    return None
                vectors = list(self._vectors)
                nbits = self._vector_rows()
                limit = self._snapshot_rows()
            result = evaluate_dnf(
                function,
                lambda i: vectors[i],
                nbits,
                counter,
            )
        cost.vectors_accessed += counter.distinct_accesses
        # Trace detail for EXPLAIN: the expression just evaluated and
        # the distinct vectors it pulled (merged across sub-lookups of
        # one dispatched predicate tree).
        with self._lock:
            self.last_reduction = function
            self.last_touched = tuple(
                sorted(set(self.last_touched) | counter.touched)
            )
        counter.publish(get_registry())
        if self._exists_vector is not None:
            # Without the Theorem 2.1 encoding the existence vector
            # must be ANDed in — the extra access the paper calls out.
            cost.vectors_accessed += 1
            result &= self._exists_vector
        if len(result) != limit:
            # Legacy/vector paths evaluate at the live row count; a
            # pinned batch still gets its snapshot-length universe.
            result.resize(limit)
        return result

    def _domain_values(self) -> List[Any]:
        return self._mapping.domain()

    # ------------------------------------------------------------------
    # maintenance (Section 2.2, updates with/without domain expansion)
    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:  # ebilint: disable=EBI302
        # Protocol rule suppressed: both branches discharge the epoch
        # obligation (``_delta_seq`` bump / always-bumping
        # ``_write_row``); the analyzer is tripped only by the inline
        # ``compact()`` threshold call, whose own mutation paths all
        # bump before returning (checked separately on ``compact``).
        value = row.get(self.column_name)
        with self._lock:
            self._ensure_encodable(value)
            nbits = row_id + 1
            for vector in self._vectors:
                vector.resize(nbits)
            if self._exists_vector is not None:
                self._exists_vector.resize(nbits)
                self._exists_vector[row_id] = True
            if self._null_vector is not None:
                self._null_vector.resize(nbits)
            if self._delta_active():
                # Arrival-order delta: the row's bits are written (the
                # vectors stay authoritative) but only ``_delta_seq``
                # moves — the plane snapshot, compiled kernels and
                # reductions all survive the append.
                code = self._code_for(value)
                self._write_code_raw(row_id, code)
                self._delta[row_id] = code
                self._delta_seq += 1
                if len(self._delta) >= self.DELTA_COMPACT_THRESHOLD:
                    self.compact()
            else:
                self._write_row(row_id, value)
            self.stats.maintenance_ops += self.width

    def _ensure_encodable(self, value: Any) -> None:
        """Expand the mapping (and vectors) for a brand-new value.

        Implements Equation 1: when the enlarged domain still fits the
        current width, only the mapping grows (Figure 2a); otherwise a
        new all-zero bitmap vector is added and cached reductions are
        invalidated (Figure 2b).
        """
        if value is None:
            if self.null_mode == "vector" or NULL in self._mapping:
                return
            value_key: Hashable = NULL
        else:
            if value in self._mapping:
                return
            value_key = value
        with self._lock:
            _, expanded = self._mapping.add_value(value_key)
            if expanded:
                self._vectors.append(BitVector(self._row_count()))
                # Adding a vector rewrites nothing, but the Boolean
                # functions of every existing value change (step 4 of
                # the paper's expansion procedure) — accounted as one
                # op per mapped value.
                self.stats.maintenance_ops += len(self._mapping)
            # Any mapping change invalidates the cached reductions and
            # the kernels compiled from them; the plane snapshot
            # follows the data version, bumped here because an
            # expansion changes the plane count without touching
            # existing rows.
            self._reduction_cache.clear()
            self._kernel_cache.clear()
            self._data_version += 1
            self.stats.maintenance_ops += 1

    def apply_mapping(self, mapping: MappingTable) -> None:
        """Install a re-encoded mapping and reset the bit planes.

        Used by :func:`repro.encoding.reencoding.apply_reencoding`:
        the mapping swap, vector reset, cache invalidation and version
        bump happen atomically under the index lock, so a concurrent
        lookup never observes the new mapping against stale planes
        (the rows are then re-written through ``_write_code`` /
        ``_write_row``, each of which bumps again under the lock).
        """
        with self._lock:
            self._mapping = mapping
            self._vectors = [
                BitVector(self._row_count())
                for _ in range(mapping.width)
            ]
            self._reduction_cache.clear()
            self._kernel_cache.clear()
            self._data_version += 1

    def rebuild(self) -> None:
        """Rebuild every bit plane from the base table (atomic swap).

        Used by :mod:`repro.shard.reorder` after a physical row
        permutation: the mapping (and therefore every cached reduction
        and compiled kernel) survives — only the planes change — so
        the vector reset, bulk rebuild, delta clear and epoch bumps
        happen under one lock acquisition, exactly like
        :meth:`apply_mapping`'s hot-swap.  A concurrent optimistic
        lookup that paired the old planes with the old version retries
        against the new state.
        """
        with self._lock:
            self._vectors = [
                BitVector(self._row_count())
                for _ in range(self._mapping.width)
            ]
            self._build()
            # _build bumps _data_version only when rows exist; bump
            # unconditionally so a snapshot of an emptied table is
            # still invalidated.
            self._data_version += 1
            self._delta.clear()
            self._delta_seq += 1

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        with self._lock:
            self._ensure_encodable(new)
            if self._null_vector is not None:
                self._null_vector[row_id] = new is None
            if row_id in self._delta:
                # The row never made it into the planes; rewriting its
                # delta entry needs no plane invalidation.
                code = self._code_for(new)
                self._write_code_raw(row_id, code)
                self._delta[row_id] = code
                self._delta_seq += 1
            else:
                self._write_row(row_id, new)
            self.stats.maintenance_ops += self.width

    def on_delete(self, row_id: int) -> None:
        with self._lock:
            if self.void_mode == "encode":
                void_code = self._mapping.encode(VOID)
                if row_id in self._delta:
                    self._write_code_raw(row_id, void_code)
                    self._delta[row_id] = void_code
                    self._delta_seq += 1
                else:
                    self._write_code(row_id, void_code)
            else:
                self._exists_vector[row_id] = False
            if self._null_vector is not None:
                self._null_vector[row_id] = False
            self.stats.maintenance_ops += 1
