"""``ebi fsck`` — integrity verification and repair for encoded bitmap
indexes.

The paper's cost model (Section 3) and retrieval correctness both rest
on structural invariants that nothing previously re-checked once an
index was built or loaded.  :func:`verify_index` audits a live
:class:`~repro.index.encoded_bitmap.EncodedBitmapIndex` against them:

``mapping-consistency``
    The mapping is a one-to-one map whose codes fit the declared width
    ``k`` (Definition 2.1), there are exactly ``k`` bitmap vectors,
    and every vector spans exactly the table's rows.

``void-code-zero``
    Theorem 2.1: with ``void_mode="encode"`` code 0 belongs to the
    VOID sentinel, every void row stores code 0, and no live row does.
    With ``void_mode="vector"`` the existence vector must be the exact
    complement of the void-row set.

``row-partition``
    The k vectors partition the rows: every row's stored code decodes
    to exactly one mapped value, and that value is the row's actual
    column value — i.e. each row is covered by exactly one minterm,
    the right one.

``reduction-cache``
    Definition 2.5 ties cost guarantees to reductions over the
    *current* mapping: every cached reduced function must still have
    the current width and cover exactly its selected codes over the
    assigned code set (unused codes are don't-cares).

:func:`repair` is the recovery path: it rebuilds only the damaged
bitmap vectors from the base column (the mapping itself cannot be
reconstructed from data, so mapping corruption is reported as
unrepairable), drops the stale reduction cache, and clears the
index's degraded flag once a re-audit passes.

:func:`verify_payload` is the file-level half used by ``repro fsck``:
it checks a serialised payload's checksums and structure without
needing the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bitmap.bitvector import BitVector
from repro.boolean.reduction import ReducedFunction
from repro.encoding.mapping import NULL, VOID, MappingTable
from repro.errors import CorruptIndexError, EncodingError
from repro.index import serialization
from repro.index.encoded_bitmap import EncodedBitmapIndex

#: Invariant identifiers, in audit order.
INVARIANT_MAPPING = "mapping-consistency"
INVARIANT_VOID = "void-code-zero"
INVARIANT_PARTITION = "row-partition"
INVARIANT_CACHE = "reduction-cache"

ALL_INVARIANTS = (
    INVARIANT_MAPPING,
    INVARIANT_VOID,
    INVARIANT_PARTITION,
    INVARIANT_CACHE,
)

#: Cap on per-row violation detail kept in a report.
_MAX_DETAILS = 8


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant breach found by the auditor."""

    invariant: str
    message: str

    def render(self) -> str:
        return f"{self.invariant}: {self.message}"


@dataclass
class FsckReport:
    """Outcome of one :func:`verify_index` run."""

    violations: List[Violation] = field(default_factory=list)
    checked_rows: int = 0
    checked_vectors: int = 0
    checked_cache_entries: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def invariants_violated(self) -> List[str]:
        """Distinct violated invariant ids, in audit order."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.invariant not in seen:
                seen.append(violation.invariant)
        return seen

    def render(self) -> str:
        if self.ok:
            return (
                f"fsck clean: {self.checked_rows} rows, "
                f"{self.checked_vectors} vectors, "
                f"{self.checked_cache_entries} cached reductions"
            )
        lines = [f"fsck found {len(self.violations)} violation(s):"]
        lines.extend("  " + v.render() for v in self.violations)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# expected state derived from the base column
# ----------------------------------------------------------------------
def _expected_code(
    index: EncodedBitmapIndex, row_id: int, value: Any
) -> Optional[int]:
    """The code this row *should* store, or None if not derivable."""
    mapping = index.mapping
    if index.table.is_void(row_id):
        if index.void_mode == "encode":
            return mapping.encode(VOID) if VOID in mapping else None
        return 0
    if value is None:
        if index.null_mode == "encode":
            return mapping.encode(NULL) if NULL in mapping else None
        return 0
    if value in mapping:
        return mapping.encode(value)
    return None


def _stored_code(index: EncodedBitmapIndex, row_id: int) -> int:
    code = 0
    for i in range(len(index._vectors)):
        if index._vectors[i][row_id]:
            code |= 1 << i
    return code


# ----------------------------------------------------------------------
# the four audits
# ----------------------------------------------------------------------
def _check_mapping_consistency(
    index: EncodedBitmapIndex, report: FsckReport
) -> bool:
    """Definition 2.1 structure; returns False when the rest of the
    audit cannot proceed meaningfully."""
    mapping = index.mapping
    ok = True
    codes = mapping.codes()
    if len(set(codes)) != len(codes):
        report.violations.append(
            Violation(
                INVARIANT_MAPPING,
                "mapping is not one-to-one: a code carries two values",
            )
        )
        ok = False
    top = 1 << mapping.width
    for value, code in mapping.items():
        if not 0 <= code < top:
            report.violations.append(
                Violation(
                    INVARIANT_MAPPING,
                    f"code {code} of value {value!r} does not fit "
                    f"width {mapping.width}",
                )
            )
            ok = False
    if len(index._vectors) != mapping.width:
        report.violations.append(
            Violation(
                INVARIANT_MAPPING,
                f"mapping width {mapping.width} != "
                f"{len(index._vectors)} bitmap vectors",
            )
        )
        ok = False
    rows = len(index.table)
    for i, vector in enumerate(index._vectors):
        report.checked_vectors += 1
        if len(vector) != rows:
            report.violations.append(
                Violation(
                    INVARIANT_MAPPING,
                    f"vector {i} spans {len(vector)} rows, table has "
                    f"{rows}",
                )
            )
            ok = False
    for name, extra in (
        ("existence", index._exists_vector),
        ("null", index._null_vector),
    ):
        if extra is not None and len(extra) != rows:
            report.violations.append(
                Violation(
                    INVARIANT_MAPPING,
                    f"{name} vector spans {len(extra)} rows, table "
                    f"has {rows}",
                )
            )
            ok = False
    return ok


def _check_void_code_zero(
    index: EncodedBitmapIndex, report: FsckReport
) -> None:
    """Theorem 2.1 (or the explicit existence vector's contract)."""
    mapping = index.mapping
    void_rows = index.table.void_rows()
    if index.void_mode == "encode":
        if VOID not in mapping:
            report.violations.append(
                Violation(
                    INVARIANT_VOID,
                    "void_mode='encode' but VOID is not in the mapping",
                )
            )
            return
        if mapping.encode(VOID) != 0:
            report.violations.append(
                Violation(
                    INVARIANT_VOID,
                    f"VOID carries code {mapping.encode(VOID)}, "
                    "Theorem 2.1 reserves code 0",
                )
            )
        bad_void = [
            row_id
            for row_id in sorted(void_rows)
            if _stored_code(index, row_id) != 0
        ]
        if bad_void:
            report.violations.append(
                Violation(
                    INVARIANT_VOID,
                    f"{len(bad_void)} void row(s) store a non-zero "
                    f"code (e.g. rows {bad_void[:_MAX_DETAILS]})",
                )
            )
        column = index.table.column(index.column_name)
        bad_live = [
            row_id
            for row_id in range(len(index.table))
            if row_id not in void_rows
            and _stored_code(index, row_id) == 0
            # NULL rows legitimately store 0 when nulls live in a
            # separate vector rather than an encoded code.
            and not (
                index.null_mode == "vector"
                and column[row_id] is None
            )
        ]
        if bad_live:
            report.violations.append(
                Violation(
                    INVARIANT_VOID,
                    f"{len(bad_live)} live row(s) store the VOID "
                    f"code 0 (e.g. rows {bad_live[:_MAX_DETAILS]})",
                )
            )
    else:
        exists = index._exists_vector
        if exists is None:
            report.violations.append(
                Violation(
                    INVARIANT_VOID,
                    "void_mode='vector' but no existence vector",
                )
            )
            return
        wrong = [
            row_id
            for row_id in range(len(index.table))
            if bool(exists[row_id]) == (row_id in void_rows)
        ]
        if wrong:
            report.violations.append(
                Violation(
                    INVARIANT_VOID,
                    f"existence vector disagrees with void rows on "
                    f"{len(wrong)} row(s) "
                    f"(e.g. rows {wrong[:_MAX_DETAILS]})",
                )
            )


def _check_row_partition(
    index: EncodedBitmapIndex, report: FsckReport
) -> None:
    """Every row covered by exactly one minterm — the right one."""
    mapping = index.mapping
    column = index.table.column(index.column_name)
    uncovered: List[int] = []
    mismatched: List[Tuple[int, int]] = []
    for row_id in range(len(index.table)):
        report.checked_rows += 1
        if index.table.is_void(row_id):
            continue  # audited by void-code-zero
        stored = _stored_code(index, row_id)
        if not mapping.has_code(stored):
            uncovered.append(row_id)
            continue
        expected = _expected_code(index, row_id, column[row_id])
        if expected is not None and stored != expected:
            mismatched.append((row_id, stored))
    if uncovered:
        report.violations.append(
            Violation(
                INVARIANT_PARTITION,
                f"{len(uncovered)} row(s) store a code outside the "
                f"mapping — covered by no minterm "
                f"(e.g. rows {uncovered[:_MAX_DETAILS]})",
            )
        )
    if mismatched:
        report.violations.append(
            Violation(
                INVARIANT_PARTITION,
                f"{len(mismatched)} row(s) store a code that decodes "
                f"to the wrong value "
                f"(e.g. {mismatched[:_MAX_DETAILS]})",
            )
        )


def _cache_entry_valid(
    mapping: MappingTable,
    codes: Tuple[int, ...],
    width: int,
    function: ReducedFunction,
) -> bool:
    if width != mapping.width or function.width != mapping.width:
        return False
    selected = set(codes)
    for code in mapping.codes():
        if function.evaluate_value(code) != (code in selected):
            return False
    return True


def _check_reduction_cache(
    index: EncodedBitmapIndex, report: FsckReport
) -> None:
    """Definition 2.5: cached reductions must match the live mapping."""
    mapping = index.mapping
    stale: List[Tuple[int, ...]] = []
    for (codes, width), function in index._reduction_cache.items():
        report.checked_cache_entries += 1
        if not _cache_entry_valid(mapping, codes, width, function):
            stale.append(codes)
    if stale:
        report.violations.append(
            Violation(
                INVARIANT_CACHE,
                f"{len(stale)} cached reduction(s) are stale for the "
                f"current mapping (e.g. code sets "
                f"{stale[:_MAX_DETAILS]})",
            )
        )


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def verify_index(
    index: EncodedBitmapIndex, mark: bool = True
) -> FsckReport:
    """Audit a live index against the paper's invariants.

    With ``mark=True`` (default) the index's ``degraded`` flag is set
    to the outcome, which the query planner consults to fall back to
    table scans instead of trusting a broken index.
    """
    report = FsckReport()
    structure_ok = _check_mapping_consistency(index, report)
    if structure_ok:
        _check_void_code_zero(index, report)
        _check_row_partition(index, report)
        _check_reduction_cache(index, report)
    if mark:
        index.degraded = not report.ok
    return report


def repair(index: EncodedBitmapIndex) -> List[int]:
    """Rebuild only the damaged bitmap vectors from the base column.

    Returns the indexes of the vectors that were rewritten.  The
    mapping table is the one artefact that cannot be reconstructed
    from data (the value->code assignment is arbitrary), so mapping
    corruption raises :class:`~repro.errors.CorruptIndexError`.
    Stale reduction-cache entries are dropped, and the index is
    re-audited: a clean re-audit clears the degraded flag.
    """
    mapping = index.mapping
    try:
        from repro.encoding.well_defined import check_mapping

        check_mapping(mapping)
    except EncodingError as exc:
        raise CorruptIndexError(
            f"mapping table is corrupt and cannot be rebuilt from the "
            f"base column: {exc}",
            field="mapping",
        ) from exc
    rows = len(index.table)
    column = index.table.column(index.column_name)

    # Expected per-row codes, straight from the base column.
    expected_codes: List[int] = []
    for row_id in range(rows):
        expected = _expected_code(index, row_id, column[row_id])
        if expected is None:
            raise CorruptIndexError(
                f"row {row_id} holds a value absent from the mapping; "
                "rebuild the index from scratch",
                field="mapping",
            )
        expected_codes.append(expected)

    width = mapping.width
    repaired: List[int] = []
    for i in range(width):
        expected_vector = BitVector(rows)
        for row_id, code in enumerate(expected_codes):
            if (code >> i) & 1:
                expected_vector[row_id] = True
        damaged = (
            i >= len(index._vectors)
            or len(index._vectors[i]) != rows
            or index._vectors[i] != expected_vector
        )
        if damaged:
            if i < len(index._vectors):
                index._vectors[i] = expected_vector
            else:
                index._vectors.append(expected_vector)
            repaired.append(i)
    del index._vectors[width:]

    # Drop cache entries the rebuilt/current mapping no longer backs.
    index._reduction_cache = {
        key: function
        for key, function in index._reduction_cache.items()
        if _cache_entry_valid(mapping, key[0], key[1], function)
    }
    verify_index(index, mark=True)
    return repaired


@dataclass
class PayloadReport:
    """File-level fsck outcome for one serialised payload."""

    path: str
    version: int = 0
    vectors: int = 0
    rows: int = 0
    error: Optional[CorruptIndexError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def render(self) -> str:
        if self.ok:
            return (
                f"PASS  {self.path}  (v{self.version}, {self.rows} "
                f"rows, {self.vectors} vectors)"
            )
        return f"FAIL  {self.path}  {self.error}"


def verify_payload(payload: bytes, path: str = "<bytes>") -> PayloadReport:
    """File-level fsck: checksums + structure, no table required."""
    report = PayloadReport(path=path)
    try:
        parsed = serialization.parse(payload)
    except CorruptIndexError as exc:
        report.error = exc
        return report
    report.version = parsed.version
    report.vectors = len(parsed.vectors) + len(parsed.compressed)
    rows = parsed.header.get("rows")
    report.rows = rows if isinstance(rows, int) else 0
    return report


def fsck_header(header: Dict[str, Any]) -> List[str]:
    """Human-readable summary lines for a parsed header (CLI aid)."""
    return [
        f"column: {header.get('column')!r}",
        f"width (k): {header.get('width')}",
        f"rows: {header.get('rows')}",
        f"void_mode: {header.get('void_mode')}, "
        f"null_mode: {header.get('null_mode')}",
        f"mapping entries: {len(header.get('mapping', []))}",
    ]
