"""Serialization of encoded bitmap indexes.

A deployed warehouse rebuilds indexes rarely; persisting them avoids
the O(n * k) build scan.  The format is deliberately simple and
self-describing:

* a JSON header (version, column, width, modes, row count, mapping
  entries with sentinel markers),
* the raw little-endian word arrays of the k bitmap vectors.

``dumps``/``loads`` work on bytes; ``save``/``load`` wrap them with a
file path.  Loading binds the index to a table the caller supplies —
the table must have the same row count the index was saved with.
"""

from __future__ import annotations

import json
import struct
from typing import Any, List

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.encoding.mapping import NULL, VOID, MappingTable
from repro.errors import IndexBuildError
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.table.table import Table

MAGIC = b"EBIX"
VERSION = 1

_SENTINEL_TO_TAG = {VOID: "__void__", NULL: "__null__"}
_TAG_TO_SENTINEL = {tag: obj for obj, tag in _SENTINEL_TO_TAG.items()}


def _encode_value(value: Any) -> List:
    """JSON-safe tagged representation of a mapped value."""
    if value in _SENTINEL_TO_TAG:
        return ["sentinel", _SENTINEL_TO_TAG[value]]
    if isinstance(value, bool):
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", value]
    if isinstance(value, str):
        return ["str", value]
    raise IndexBuildError(
        f"cannot serialise mapping value of type {type(value).__name__}"
    )


def _decode_value(tagged: List) -> Any:
    kind, payload = tagged
    if kind == "sentinel":
        return _TAG_TO_SENTINEL[payload]
    if kind == "bool":
        return bool(payload)
    if kind == "int":
        return int(payload)
    if kind == "float":
        return float(payload)
    if kind == "str":
        return str(payload)
    raise IndexBuildError(f"unknown value tag {kind!r}")


def dumps(index: EncodedBitmapIndex) -> bytes:
    """Serialise an encoded bitmap index to bytes."""
    header = {
        "version": VERSION,
        "column": index.column_name,
        "width": index.width,
        "void_mode": index.void_mode,
        "null_mode": index.null_mode,
        "rows": len(index.table),
        "mapping": [
            [_encode_value(value), code]
            for value, code in index.mapping.items()
        ],
    }
    header_bytes = json.dumps(header).encode("utf-8")
    parts = [
        MAGIC,
        struct.pack("<I", len(header_bytes)),
        header_bytes,
    ]
    for i in range(index.width):
        words = index.vector(i).words
        raw = words.astype("<u8").tobytes()
        parts.append(struct.pack("<I", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def loads(payload: bytes, table: Table) -> EncodedBitmapIndex:
    """Reconstruct an index from bytes, bound to ``table``."""
    if payload[:4] != MAGIC:
        raise IndexBuildError("not an EBIX payload")
    offset = 4
    (header_len,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    header = json.loads(
        payload[offset : offset + header_len].decode("utf-8")
    )
    offset += header_len
    if header["version"] != VERSION:
        raise IndexBuildError(
            f"unsupported EBIX version {header['version']}"
        )
    if header["rows"] != len(table):
        raise IndexBuildError(
            f"index was saved for {header['rows']} rows, table has "
            f"{len(table)}"
        )
    if header["column"] not in table:
        raise IndexBuildError(
            f"table has no column {header['column']!r}"
        )

    mapping = MappingTable(
        width=header["width"], reserve_void_zero=False
    )
    for tagged, code in header["mapping"]:
        mapping.assign(_decode_value(tagged), code)

    index = EncodedBitmapIndex.__new__(EncodedBitmapIndex)
    # Initialise without a rebuild scan: restore state directly.
    from repro.index.base import Index

    Index.__init__(index, table, header["column"])
    index.void_mode = header["void_mode"]
    index.null_mode = header["null_mode"]
    index.exact_reduction = True
    index._mapping = mapping
    index._reduction_cache = {}
    index._exists_vector = None
    index._null_vector = None
    if index.void_mode == "vector":
        index._exists_vector = table.existence_vector()
    if index.null_mode == "vector":
        null_vector = BitVector(len(table))
        column = table.column(header["column"])
        for row_id in range(len(table)):
            if not table.is_void(row_id) and column[row_id] is None:
                null_vector[row_id] = True
        index._null_vector = null_vector

    nbits = header["rows"]
    vectors = []
    for _ in range(header["width"]):
        (raw_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        raw = payload[offset : offset + raw_len]
        offset += raw_len
        words = np.frombuffer(raw, dtype="<u8").astype(np.uint64)
        vectors.append(BitVector._from_words(words.copy(), nbits))
    index._vectors = vectors
    return index


def save(index: EncodedBitmapIndex, path: str) -> None:
    """Write the serialised index to ``path``."""
    with open(path, "wb") as handle:
        handle.write(dumps(index))


def load(path: str, table: Table) -> EncodedBitmapIndex:
    """Read an index from ``path`` and bind it to ``table``."""
    with open(path, "rb") as handle:
        return loads(handle.read(), table)
