"""Serialization of encoded bitmap indexes.

A deployed warehouse rebuilds indexes rarely; persisting them avoids
the O(n * k) build scan.  The format (version 2) is self-describing
and *checked* end to end:

* magic ``EBI2``, a binary version/length/CRC32 preamble,
* a JSON header (column, width, modes, row count, mapping entries with
  sentinel markers) protected by its own CRC32,
* the raw little-endian word arrays of the k bitmap vectors, each
  framed with a length and a CRC32.

Any truncation, bit flip or structural inconsistency (non-bijective
mapping, codes outside the width, VOID off code 0, wrong vector
length) raises a typed :class:`~repro.errors.CorruptIndexError`
carrying the byte offset and field that failed — never a raw
``KeyError``/``struct.error``/JSON crash, and never a silently wrong
index.  Version-1 payloads (magic ``EBIX``, no checksums) are still
readable behind the same error contract.

Version 2 payloads carry a ``kind`` tag.  ``"encoded"`` (the default
when absent, for payloads written before the tag existed) is the
encoded bitmap index above; ``"compressed"`` persists a
:class:`~repro.index.compressed.CompressedBitmapIndex` as one
word-aligned token stream (:meth:`~repro.bitmap.wah.WordAlignedBitmap.tokens`)
per value vector plus one for the NULL vector — every section framed
with the same length + CRC32, so ``repro fsck`` audits compressed
payloads exactly like encoded ones.

``dumps``/``loads`` work on bytes; ``save``/``load`` wrap them with a
file path.  ``save`` is atomic: write-temp + verify + rename, so a
crashed save never clobbers the previous good index.  Loading binds
the index to a table the caller supplies — the table must have the
same row count the index was saved with.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.bitmap.rle import RunLengthBitmap
from repro.bitmap.wah import WordAlignedBitmap
from repro.encoding.mapping import NULL, VOID, MappingTable
from repro.errors import (
    CorruptIndexError,
    EncodingError,
    IndexBuildError,
    InvalidArgumentError,
)
from repro.index.compressed import CompressedBitmapIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.table.table import Table

#: Index types with a payload format, keyed by their header tag.
SerializableIndex = Union[EncodedBitmapIndex, CompressedBitmapIndex]

#: Version-2 container magic (checksummed format).
MAGIC = b"EBI2"
#: Version-1 magic, still accepted by :func:`loads` (no checksums).
MAGIC_V1 = b"EBIX"
VERSION = 2

#: Binary preamble after the magic: u16 version, u32 header length,
#: u32 header CRC32.
_PREAMBLE = struct.Struct("<HII")
#: Per-vector frame: u32 payload length, u32 payload CRC32.
_SECTION = struct.Struct("<II")

_SENTINEL_TO_TAG = {VOID: "__void__", NULL: "__null__"}
_TAG_TO_SENTINEL = {tag: obj for obj, tag in _SENTINEL_TO_TAG.items()}

_MODES = ("encode", "vector")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _encode_value(value: Any) -> List:
    """JSON-safe tagged representation of a mapped value."""
    if value in _SENTINEL_TO_TAG:
        return ["sentinel", _SENTINEL_TO_TAG[value]]
    if isinstance(value, bool):
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", value]
    if isinstance(value, str):
        return ["str", value]
    raise IndexBuildError(
        f"cannot serialise mapping value of type {type(value).__name__}"
    )


def _decode_value(tagged: Any) -> Any:
    if (
        not isinstance(tagged, (list, tuple))
        or len(tagged) != 2
        or not isinstance(tagged[0], str)
    ):
        raise CorruptIndexError(
            f"malformed mapping entry {tagged!r}", field="mapping"
        )
    kind, payload = tagged
    if kind == "sentinel":
        try:
            return _TAG_TO_SENTINEL[payload]
        except (KeyError, TypeError):
            raise CorruptIndexError(
                f"unknown sentinel tag {payload!r}", field="mapping"
            ) from None
    if kind == "bool":
        return bool(payload)
    if kind in ("int", "float", "str"):
        caster = {"int": int, "float": float, "str": str}[kind]
        try:
            return caster(payload)
        except (TypeError, ValueError):
            raise CorruptIndexError(
                f"mapping value {payload!r} does not decode as {kind}",
                field="mapping",
            ) from None
    raise CorruptIndexError(
        f"unknown value tag {kind!r}", field="mapping"
    )


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def dumps(index: SerializableIndex) -> bytes:
    """Serialise an index to (checksummed) bytes.

    Dispatches on the index type: encoded bitmap indexes store their
    ``k`` packed vectors, run-length compressed indexes store one
    word-aligned token stream per value vector.
    """
    if isinstance(index, CompressedBitmapIndex):
        return _dumps_compressed(index)
    header = {
        "version": VERSION,
        "kind": "encoded",
        "column": index.column_name,
        "width": index.width,
        "void_mode": index.void_mode,
        "null_mode": index.null_mode,
        "rows": len(index.table),
        "mapping": [
            [_encode_value(value), code]
            for value, code in index.mapping.items()
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [
        MAGIC,
        _PREAMBLE.pack(VERSION, len(header_bytes), _crc(header_bytes)),
        header_bytes,
    ]
    for i in range(index.width):
        words = index.vector(i).words
        raw = words.astype("<u8").tobytes()
        parts.append(_SECTION.pack(len(raw), _crc(raw)))
        parts.append(raw)
    return b"".join(parts)


def _dumps_compressed(index: CompressedBitmapIndex) -> bytes:
    """Compressed-index payload: WAH token sections, one per value.

    Values are serialised in a deterministic order (their tagged JSON
    form); the NULL vector is always the final section.  Token streams
    are self-delimiting (:meth:`WordAlignedBitmap.from_tokens`
    re-validates header words and bit coverage), so corruption is
    caught both by the CRC frame and by structural decode.
    """
    tagged = sorted(
        (_encode_value(value), value)
        for value in index._vectors
    )
    header = {
        "version": VERSION,
        "kind": "compressed",
        "column": index.column_name,
        "rows": len(index.table),
        "values": [entry for entry, _ in tagged],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    parts = [
        MAGIC,
        _PREAMBLE.pack(VERSION, len(header_bytes), _crc(header_bytes)),
        header_bytes,
    ]
    planes = [index._vectors[value] for _, value in tagged]
    planes.append(index._null_vector)
    for compressed in planes:
        tokens = compressed.to_word_aligned().tokens()
        raw = tokens.astype("<u8").tobytes()
        parts.append(_SECTION.pack(len(raw), _crc(raw)))
        parts.append(raw)
    return b"".join(parts)


# ----------------------------------------------------------------------
# parsing (table-free) — shared by loads() and the fsck CLI
# ----------------------------------------------------------------------
@dataclass
class ParsedIndex:
    """A structurally validated payload, not yet bound to a table.

    ``kind`` selects which halves are populated: ``"encoded"``
    payloads carry ``mapping`` and the packed ``vectors``;
    ``"compressed"`` payloads carry ``values`` plus the word-aligned
    ``compressed`` planes (the last one is the NULL vector).
    """

    version: int
    header: Dict[str, Any]
    kind: str = "encoded"
    mapping: Optional[MappingTable] = None
    vectors: List[np.ndarray] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)
    compressed: List[WordAlignedBitmap] = field(default_factory=list)


def _slice(
    payload: bytes, offset: int, length: int, field: str
) -> bytes:
    if length < 0 or offset + length > len(payload):
        raise CorruptIndexError(
            f"payload truncated: {field} needs {length} bytes at "
            f"offset {offset}, have {len(payload) - offset}",
            offset=offset,
            field=field,
        )
    return payload[offset : offset + length]


def _header_field(
    header: Dict[str, Any], name: str, kind: type, *extra: type
) -> Any:
    try:
        value = header[name]
    except KeyError:
        raise CorruptIndexError(
            f"header is missing required field {name!r}", field=name
        ) from None
    kinds: Tuple[type, ...] = (kind, *extra)
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise CorruptIndexError(
            f"header field {name!r} has type "
            f"{type(value).__name__}, expected "
            f"{'/'.join(k.__name__ for k in kinds)}",
            field=name,
        )
    return value


def _build_mapping(header: Dict[str, Any]) -> MappingTable:
    """Reconstruct and structurally validate the mapping table."""
    width = _header_field(header, "width", int)
    if width < 1:
        raise CorruptIndexError(
            f"width must be >= 1, got {width}", field="width"
        )
    entries = _header_field(header, "mapping", list)
    mapping = MappingTable(width=width, reserve_void_zero=False)
    for entry in entries:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise CorruptIndexError(
                f"malformed mapping entry {entry!r}", field="mapping"
            )
        tagged, code = entry
        if not isinstance(code, int) or isinstance(code, bool):
            raise CorruptIndexError(
                f"mapping code {code!r} is not an integer",
                field="mapping",
            )
        value = _decode_value(tagged)
        try:
            # One-to-one and width bounds enforced by assign():
            # duplicates or out-of-range codes are corruption here.
            mapping.assign(value, code)
        except EncodingError as exc:
            raise CorruptIndexError(
                f"mapping is not a valid bijection: {exc}",
                field="mapping",
            ) from exc
    void_mode = _header_field(header, "void_mode", str)
    if void_mode == "encode" and VOID not in mapping:
        raise CorruptIndexError(
            "void_mode='encode' but VOID is not in the mapping",
            field="mapping",
        )
    if VOID in mapping and mapping.encode(VOID) != 0:
        raise CorruptIndexError(
            "Theorem 2.1 violated: VOID is mapped but not on code 0",
            field="mapping",
        )
    return mapping


def parse(payload: bytes) -> ParsedIndex:
    """Structurally validate a payload without binding it to a table.

    Verifies the magic, version, header CRC, header schema, mapping
    bijectivity (and Theorem 2.1's code-0 reservation), and each
    vector section's length and CRC.  Raises
    :class:`~repro.errors.CorruptIndexError` on the first violation.
    """
    magic = _slice(payload, 0, 4, "magic")
    if magic == MAGIC_V1:
        return _parse_v1(payload)
    if magic != MAGIC:
        raise CorruptIndexError(
            f"bad magic {magic!r}: not an EBI index payload",
            offset=0,
            field="magic",
        )
    offset = 4
    preamble = _slice(payload, offset, _PREAMBLE.size, "preamble")
    version, header_len, header_crc = _PREAMBLE.unpack(preamble)
    offset += _PREAMBLE.size
    if version != VERSION:
        raise CorruptIndexError(
            f"unsupported EBI index version {version}",
            offset=4,
            field="version",
        )
    header_bytes = _slice(payload, offset, header_len, "header")
    actual_crc = _crc(header_bytes)
    if actual_crc != header_crc:
        raise CorruptIndexError(
            f"header checksum mismatch: stored {header_crc:#010x}, "
            f"computed {actual_crc:#010x}",
            offset=offset,
            field="header",
        )
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptIndexError(
            f"header does not decode as JSON: {exc}",
            offset=offset,
            field="header",
        ) from exc
    offset += header_len
    if not isinstance(header, dict):
        raise CorruptIndexError(
            "header is not a JSON object", offset=4, field="header"
        )

    rows = _header_field(header, "rows", int)
    if rows < 0:
        raise CorruptIndexError(
            f"negative row count {rows}", field="rows"
        )
    _header_field(header, "column", str)
    kind = header.get("kind", "encoded")
    if kind == "compressed":
        return _parse_compressed(payload, header, offset, rows)
    if kind != "encoded":
        raise CorruptIndexError(
            f"unknown payload kind {kind!r}", field="kind"
        )
    for mode_field in ("void_mode", "null_mode"):
        if _header_field(header, mode_field, str) not in _MODES:
            raise CorruptIndexError(
                f"{mode_field} must be one of {_MODES}",
                field=mode_field,
            )
    mapping = _build_mapping(header)

    vectors: List[np.ndarray] = []
    expected_len = ((rows + 63) // 64) * 8
    for i in range(mapping.width):
        section_field = f"vector[{i}]"
        frame = _slice(payload, offset, _SECTION.size, section_field)
        raw_len, raw_crc = _SECTION.unpack(frame)
        offset += _SECTION.size
        if raw_len != expected_len:
            raise CorruptIndexError(
                f"vector {i} holds {raw_len} bytes, expected "
                f"{expected_len} for {rows} rows",
                offset=offset,
                field=f"{section_field}.length",
            )
        raw = _slice(payload, offset, raw_len, section_field)
        actual = _crc(raw)
        if actual != raw_crc:
            raise CorruptIndexError(
                f"vector {i} checksum mismatch: stored "
                f"{raw_crc:#010x}, computed {actual:#010x}",
                offset=offset,
                field=section_field,
            )
        offset += raw_len
        vectors.append(np.frombuffer(raw, dtype="<u8").astype(np.uint64))
    if offset != len(payload):
        raise CorruptIndexError(
            f"{len(payload) - offset} trailing bytes after the last "
            "vector section",
            offset=offset,
            field="trailer",
        )
    return ParsedIndex(
        version=VERSION, header=header, mapping=mapping, vectors=vectors
    )


def _parse_compressed(
    payload: bytes, header: Dict[str, Any], offset: int, rows: int
) -> ParsedIndex:
    """Validate a ``kind="compressed"`` payload's value list and the
    word-aligned token section per value (NULL vector last)."""
    entries = _header_field(header, "values", list)
    values: List[Any] = []
    seen_reprs = set()
    for entry in entries:
        value = _decode_value(entry)
        marker = (type(value).__name__, repr(value))
        if marker in seen_reprs:
            raise CorruptIndexError(
                f"duplicate value {value!r} in compressed payload",
                field="values",
            )
        seen_reprs.add(marker)
        values.append(value)
    planes: List[WordAlignedBitmap] = []
    for i in range(len(values) + 1):
        section_field = (
            f"value[{i}]" if i < len(values) else "null-vector"
        )
        frame = _slice(payload, offset, _SECTION.size, section_field)
        raw_len, raw_crc = _SECTION.unpack(frame)
        offset += _SECTION.size
        if raw_len % 8 != 0:
            raise CorruptIndexError(
                f"section {section_field} holds {raw_len} bytes, not "
                "a whole number of 64-bit tokens",
                offset=offset,
                field=f"{section_field}.length",
            )
        raw = _slice(payload, offset, raw_len, section_field)
        actual = _crc(raw)
        if actual != raw_crc:
            raise CorruptIndexError(
                f"section {section_field} checksum mismatch: stored "
                f"{raw_crc:#010x}, computed {actual:#010x}",
                offset=offset,
                field=section_field,
            )
        offset += raw_len
        tokens = np.frombuffer(raw, dtype="<u8").astype(np.uint64)
        try:
            planes.append(WordAlignedBitmap.from_tokens(tokens, rows))
        except InvalidArgumentError as exc:
            raise CorruptIndexError(
                f"section {section_field} is not a valid word-aligned "
                f"token stream: {exc}",
                offset=offset,
                field=section_field,
            ) from exc
    if offset != len(payload):
        raise CorruptIndexError(
            f"{len(payload) - offset} trailing bytes after the last "
            "token section",
            offset=offset,
            field="trailer",
        )
    return ParsedIndex(
        version=VERSION,
        header=header,
        kind="compressed",
        values=values,
        compressed=planes,
    )


def _parse_v1(payload: bytes) -> ParsedIndex:
    """Parse the legacy (un-checksummed) version-1 layout."""
    offset = 4
    frame = _slice(payload, offset, 4, "header-length")
    (header_len,) = struct.unpack("<I", frame)
    offset += 4
    header_bytes = _slice(payload, offset, header_len, "header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptIndexError(
            f"header does not decode as JSON: {exc}",
            offset=offset,
            field="header",
        ) from exc
    offset += header_len
    if not isinstance(header, dict):
        raise CorruptIndexError(
            "header is not a JSON object", offset=4, field="header"
        )
    if _header_field(header, "version", int) != 1:
        raise CorruptIndexError(
            f"unsupported EBI index version {header.get('version')!r}",
            field="version",
        )
    rows = _header_field(header, "rows", int)
    if rows < 0:
        raise CorruptIndexError(
            f"negative row count {rows}", field="rows"
        )
    _header_field(header, "column", str)
    for mode_field in ("void_mode", "null_mode"):
        if _header_field(header, mode_field, str) not in _MODES:
            raise CorruptIndexError(
                f"{mode_field} must be one of {_MODES}",
                field=mode_field,
            )
    mapping = _build_mapping(header)
    vectors: List[np.ndarray] = []
    expected_len = ((rows + 63) // 64) * 8
    for i in range(mapping.width):
        section_field = f"vector[{i}]"
        frame = _slice(payload, offset, 4, section_field)
        (raw_len,) = struct.unpack("<I", frame)
        offset += 4
        if raw_len != expected_len:
            raise CorruptIndexError(
                f"vector {i} holds {raw_len} bytes, expected "
                f"{expected_len} for {rows} rows",
                offset=offset,
                field=f"{section_field}.length",
            )
        raw = _slice(payload, offset, raw_len, section_field)
        offset += raw_len
        vectors.append(np.frombuffer(raw, dtype="<u8").astype(np.uint64))
    return ParsedIndex(
        version=1, header=header, mapping=mapping, vectors=vectors
    )


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def loads(payload: bytes, table: Table) -> SerializableIndex:
    """Reconstruct an index from bytes, bound to ``table``.

    The payload's ``kind`` tag picks the index class.  Raises
    :class:`~repro.errors.CorruptIndexError` when the payload itself
    is damaged, and :class:`~repro.errors.IndexBuildError` when the
    (intact) payload does not match the supplied table.
    """
    parsed = parse(payload)
    header = parsed.header
    if header["rows"] != len(table):
        raise IndexBuildError(
            f"index was saved for {header['rows']} rows, table has "
            f"{len(table)}"
        )
    if header["column"] not in table:
        raise IndexBuildError(
            f"table has no column {header['column']!r}"
        )
    if parsed.kind == "compressed":
        return _loads_compressed(parsed, table)

    index = EncodedBitmapIndex.__new__(EncodedBitmapIndex)
    # Initialise without a rebuild scan: restore state directly.
    from repro.index.base import Index

    Index.__init__(index, table, header["column"])
    index.void_mode = header["void_mode"]
    index.null_mode = header["null_mode"]
    index.exact_reduction = True
    index._mapping = parsed.mapping
    index._init_caches()
    index._exists_vector = None
    index._null_vector = None
    if index.void_mode == "vector":
        index._exists_vector = table.existence_vector()
    if index.null_mode == "vector":
        null_vector = BitVector(len(table))
        column = table.column(header["column"])
        for row_id in range(len(table)):
            if not table.is_void(row_id) and column[row_id] is None:
                null_vector[row_id] = True
        index._null_vector = null_vector

    nbits = header["rows"]
    index._vectors = [
        BitVector._from_words(words.copy(), nbits)
        for words in parsed.vectors
    ]
    return index


def _loads_compressed(
    parsed: ParsedIndex, table: Table
) -> CompressedBitmapIndex:
    """Restore a compressed index without the O(n * m) rebuild scan."""
    from repro.index.base import Index

    index = CompressedBitmapIndex.__new__(CompressedBitmapIndex)
    Index.__init__(index, table, parsed.header["column"])
    index._vectors = {
        value: RunLengthBitmap.from_word_aligned(plane)
        for value, plane in zip(parsed.values, parsed.compressed)
    }
    index._null_vector = RunLengthBitmap.from_word_aligned(
        parsed.compressed[-1]
    )
    return index


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def save(index: SerializableIndex, path: str) -> None:
    """Atomically write the serialised index to ``path``.

    Write-temp + verify + rename: the payload goes to ``path + ".tmp"``
    first, is re-read and checksum-verified, and only then renamed over
    ``path`` — a crash mid-save leaves any previous index intact, and
    a corrupted temp file is never published.
    """
    payload = dumps(index)
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        with open(tmp_path, "rb") as handle:
            parse(handle.read())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load(path: str, table: Table) -> SerializableIndex:
    """Read an index from ``path`` and bind it to ``table``."""
    with open(path, "rb") as handle:
        return loads(handle.read(), table)
