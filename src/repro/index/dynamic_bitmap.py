"""Dynamic bitmap index (Sarawagi; Section 4 of the paper).

Dynamic bitmaps encode ``n`` distinct values onto ``n`` consecutive
``log2 n``-bit integers, in order of first appearance.  The paper's
point is that this is an encoded bitmap index with a *trivial*
encoding — no attention paid to which values share subcubes — so it
inherits the space benefits but not the well-defined-encoding query
benefits.  Implemented as a thin subclass pinning that arrival-order
mapping.
"""

from __future__ import annotations

from typing import Optional

from repro.encoding.mapping import MappingTable
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.obs.metrics import MetricsRegistry
from repro.table.table import Table


class DynamicBitmapIndex(EncodedBitmapIndex):
    """Encoded bitmap index with the arrival-order (trivial) encoding."""

    kind = "dynamic-bitmap"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        column = table.column(column_name)
        seen = []
        marker = set()
        void = table.void_rows()
        for row_id in range(len(table)):
            if row_id in void:
                continue
            value = column[row_id]
            if value is not None and value not in marker:
                marker.add(value)
                seen.append(value)
        mapping = MappingTable.from_values(
            seen,
            reserve_void_zero=True,
            include_null=column.has_nulls(),
        )
        super().__init__(
            table,
            column_name,
            encoding=mapping,
            registry=registry,
            void_mode="encode",
            null_mode="encode" if column.has_nulls() else "encode",
        )
