"""Projection index (O'Neil & Quass; Section 4 of the paper).

A materialisation of the column's values in tuple-id order — the
paper notes it is an encoded bitmap index whose mapping is the
identity on internal codes, stored *horizontally* instead of
vertically.  Every lookup scans the projection; the cost is the
number of stored rows checked (pages, at the storage level).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bitmap.bitvector import BitVector
from repro.errors import UnsupportedPredicateError
from repro.index.base import Index, LookupCost, deprecated_positionals
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.storage.page import PAGE_SIZE_DEFAULT
from repro.table.table import Table

#: Assumed bytes per stored value (fixed-width attribute).
VALUE_BYTES = 4


class ProjectionIndex(Index):
    """Positional copy of a column, scanned on every lookup."""

    kind = "projection"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        registry: Optional[MetricsRegistry] = None,
        page_size: int = PAGE_SIZE_DEFAULT,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__, args, ("page_size",)
        )
        page_size = legacy.get("page_size", page_size)
        super().__init__(table, column_name, registry=registry)
        self.page_size = page_size
        self._values: List[Any] = []
        self._build()

    def _build(self) -> None:
        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        for row_id in range(len(self.table)):
            value = None if row_id in void else column[row_id]
            self._values.append(value)

    # ------------------------------------------------------------------
    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        if not isinstance(predicate, (Equals, InList, Range, IsNull)):
            raise UnsupportedPredicateError(
                f"unsupported predicate {predicate}"
            )
        nbits = self._row_count()
        result = BitVector(nbits)
        void = self.table.void_rows()
        for row_id, value in enumerate(self._values):
            cost.rows_checked += 1
            if row_id in void:
                continue
            if isinstance(predicate, IsNull):
                hit = value is None
            else:
                hit = value is not None and predicate.matches(
                    {self.column_name: value}
                )
            if hit:
                result[row_id] = True
        return result

    def value_at(self, row_id: int) -> Any:
        """Positional read — the projection index's native operation."""
        return self._values[row_id]

    def nbytes(self) -> int:
        return len(self._values) * VALUE_BYTES

    def pages(self) -> int:
        """Pages a full scan reads."""
        return -(-self.nbytes() // self.page_size)

    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        self._values.append(row.get(self.column_name))
        self.stats.maintenance_ops += 1

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        self._values[row_id] = new
        self.stats.maintenance_ops += 1

    def on_delete(self, row_id: int) -> None:
        self._values[row_id] = None
        self.stats.maintenance_ops += 1
