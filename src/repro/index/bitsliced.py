"""Bit-sliced index (O'Neil & Quass; Section 4 of the paper).

The paper observes that a bit-sliced index *is* an encoded bitmap
index whose mapping is the total-order preserving identity on the
fixed-point representation.  This subclass builds exactly that
mapping and adds the O'Neil–Quass range algorithm, which evaluates
``A <= c`` directly on the slices with one pass from the most
significant slice down — no IN-list rewrite, at the cost of touching
(up to) all ``k`` slices.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.bitmap.bitvector import BitVector
from repro.encoding.total_order import bit_slice_encoding
from repro.index.base import LookupCost, deprecated_positionals
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Predicate, Range
from repro.table.table import Table


class BitSlicedIndex(EncodedBitmapIndex):
    """Encoded bitmap index with the bit-slice (order) encoding."""

    kind = "bit-sliced"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        registry: Optional[MetricsRegistry] = None,
        use_slice_algorithm: bool = True,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__, args, ("use_slice_algorithm",)
        )
        use_slice_algorithm = legacy.get(
            "use_slice_algorithm", use_slice_algorithm
        )
        column = table.column(column_name)
        mapping = bit_slice_encoding(
            column.distinct_values(), reserve_void_zero=True
        )
        self.use_slice_algorithm = use_slice_algorithm
        super().__init__(
            table,
            column_name,
            encoding=mapping,
            registry=registry,
            void_mode="encode",
            null_mode="vector" if column.has_nulls() else "encode",
        )

    # ------------------------------------------------------------------
    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        if isinstance(predicate, Range) and self.use_slice_algorithm:
            return self._slice_range(predicate, cost)
        return super()._lookup(predicate, cost)

    # ------------------------------------------------------------------
    def _slice_range(self, predicate: Range, cost: LookupCost) -> BitVector:
        """O'Neil–Quass comparison on slices: ``low <= code <= high``.

        Codes preserve the value order, so the range maps to a code
        interval; the comparison walks slices from MSB to LSB keeping
        ``lt``/``gt``/``eq`` state vectors.
        """
        low_code = self._bound_code(predicate, is_low=True)
        high_code = self._bound_code(predicate, is_low=False)
        nbits = self._row_count()
        if low_code is None or high_code is None or low_code > high_code:
            return BitVector(nbits)

        # Every slice is touched at most once across both comparisons
        # and the void exclusion; footnote 4 counts distinct vectors.
        cost.vectors_accessed += self.width
        result = self._compare_leq(high_code)
        if low_code > 0:
            result = result.andnot(self._compare_leq(low_code - 1))
        # Codes 0 (void) and the null code are below every live code
        # because bit_slice_encoding reserves 0 and assigns values from
        # 1 upward, so low_code >= 1 already excludes them.
        return result

    def _bound_code(self, predicate: Range, is_low: bool) -> Optional[int]:
        """Tightest code bound for one side of the range."""
        domain = sorted(self._mapping.domain())
        if not domain:
            return None
        if is_low:
            if predicate.low is None:
                return self._mapping.encode(domain[0])
            candidates = [
                value
                for value in domain
                if (
                    value >= predicate.low
                    if predicate.low_inclusive
                    else value > predicate.low
                )
            ]
            if not candidates:
                return None
            return self._mapping.encode(candidates[0])
        if predicate.high is None:
            return self._mapping.encode(domain[-1])
        candidates = [
            value
            for value in domain
            if (
                value <= predicate.high
                if predicate.high_inclusive
                else value < predicate.high
            )
        ]
        if not candidates:
            return None
        return self._mapping.encode(candidates[-1])

    def _compare_leq(self, bound: int) -> BitVector:
        """Vector of rows whose code is <= ``bound`` (excluding code 0).

        Classic bit-sliced comparison: starting from the MSB slice,
        ``lt`` accumulates rows already strictly below the bound and
        ``eq`` tracks rows still equal on the prefix.
        """
        nbits = self._row_count()
        lt = BitVector(nbits)
        eq = BitVector.ones(nbits)
        for i in range(self.width - 1, -1, -1):
            slice_i = self._vectors[i]
            if (bound >> i) & 1:
                lt |= eq.andnot(slice_i)
                eq &= slice_i
            else:
                eq = eq.andnot(slice_i)
        result = lt | eq
        # Exclude void code 0 (all slices zero): any row with some bit
        # set survives; rows with code 0 must be cleared.
        nonzero = BitVector(nbits)
        for i in range(self.width):
            nonzero |= self._vectors[i]
        return result & nonzero
