"""Value-list (inverted) index — Section 4 of the paper.

Stores, per key value, the sorted list of tuple-ids.  This is the
structure traditionally kept at B-tree leaves; here it stands alone
as an inverted file.  Space is proportional to the number of tuples
(4 bytes per tuple-id) plus key overhead, and a lookup touches one
list per selected value.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional

from repro.bitmap.bitvector import BitVector
from repro.errors import UnsupportedPredicateError
from repro.index.base import Index, LookupCost, range_values
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.table.table import Table

TUPLE_ID_BYTES = 4
KEY_BYTES = 8


class ValueListIndex(Index):
    """Inverted file: value -> sorted tuple-id list."""

    kind = "value-list"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(table, column_name, registry=registry)
        self._lists: Dict[Any, List[int]] = {}
        self._null_list: List[int] = []
        self._build()

    def _build(self) -> None:
        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        for row_id in range(len(self.table)):
            if row_id in void:
                continue
            value = column[row_id]
            if value is None:
                self._null_list.append(row_id)
            else:
                self._lists.setdefault(value, []).append(row_id)

    # ------------------------------------------------------------------
    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        nbits = self._row_count()
        result = BitVector(nbits)
        if isinstance(predicate, Equals):
            values = [predicate.value]
        elif isinstance(predicate, InList):
            values = list(predicate.values)
        elif isinstance(predicate, Range):
            values = range_values(self._lists.keys(), predicate)
        elif isinstance(predicate, IsNull):
            cost.vectors_accessed += 1
            for row_id in self._null_list:
                result[row_id] = True
            return result
        else:
            raise UnsupportedPredicateError(
                f"unsupported predicate {predicate}"
            )
        for value in values:
            rows = self._lists.get(value)
            if rows is None:
                continue
            cost.vectors_accessed += 1  # one list fetched per value
            cost.rows_checked += len(rows)
            for row_id in rows:
                result[row_id] = True
        return result

    # ------------------------------------------------------------------
    def rows_for(self, value: Any) -> List[int]:
        return list(self._lists.get(value, []))

    def nbytes(self) -> int:
        tuple_bytes = sum(
            len(rows) for rows in self._lists.values()
        ) * TUPLE_ID_BYTES
        tuple_bytes += len(self._null_list) * TUPLE_ID_BYTES
        return tuple_bytes + len(self._lists) * KEY_BYTES

    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        value = row.get(self.column_name)
        if value is None:
            self._null_list.append(row_id)
        else:
            self._lists.setdefault(value, []).append(row_id)
        self.stats.maintenance_ops += 1

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        self._discard(old, row_id)
        if new is None:
            bisect.insort(self._null_list, row_id)
        else:
            rows = self._lists.setdefault(new, [])
            bisect.insort(rows, row_id)
        self.stats.maintenance_ops += 1

    def on_delete(self, row_id: int) -> None:
        value = self.table.column(self.column_name)[row_id]
        self._discard(value, row_id)
        self.stats.maintenance_ops += 1

    def _discard(self, value: Any, row_id: int) -> None:
        if value is None:
            if row_id in self._null_list:
                self._null_list.remove(row_id)
            return
        rows = self._lists.get(value)
        if rows and row_id in rows:
            rows.remove(row_id)
