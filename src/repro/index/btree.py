"""Paged B+tree index — the OLTP comparator of Section 2.1.

A real B+tree: internal nodes route by key, leaves hold value-lists
(lists of tuple-ids) and are chained for range scans.  Every node
occupies one simulated page, so the index's space is
``page_count * page_size`` and every traversal step is a counted node
access — giving the paper's space formula ``~1.44 n / M * p`` and the
``O(n log_M m)`` build behaviour something measurable to land on.

With the default 4 KiB page and 8-byte routing entries the fanout is
M = 512, the exact parameters of the paper's break-even analysis
(bitmaps win space iff m < 11.52 p / M = 93).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from repro.bitmap.bitvector import BitVector
from repro.errors import UnsupportedPredicateError
from repro.index.base import Index, LookupCost, deprecated_positionals
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.storage.page import PAGE_SIZE_DEFAULT
from repro.storage.pager import Pager
from repro.storage.stats import IOStatistics
from repro.table.table import Table

#: Bytes per routing entry (key + child pointer), per the paper's
#: Section 2.1 parameters (page 4K, degree 512).
ROUTING_ENTRY_BYTES = 8
#: Bytes per leaf entry (key + tuple-id).
LEAF_ENTRY_BYTES = 8


def _leaf_entry_count(node: "_Node") -> int:
    """Total (key, tuple-id) pairs stored in a leaf."""
    return sum(len(entry) for entry in node.entries)


class _Node:
    """One B+tree node, pinned to a simulated page."""

    __slots__ = ("page_id", "is_leaf", "keys", "children", "entries", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        # internal: child page ids (len(keys) + 1)
        self.children: List[int] = []
        # leaf: row-id lists parallel to keys
        self.entries: List[List[int]] = []
        self.next_leaf: Optional[int] = None


class BPlusTreeIndex(Index):
    """B+tree over one column, with value-list leaves."""

    kind = "btree"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        registry: Optional[MetricsRegistry] = None,
        page_size: int = PAGE_SIZE_DEFAULT,
        fanout: Optional[int] = None,
        stats_io: Optional[IOStatistics] = None,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__,
            args,
            ("page_size", "fanout", "stats_io"),
        )
        page_size = legacy.get("page_size", page_size)
        fanout = legacy.get("fanout", fanout)
        stats_io = legacy.get("stats_io", stats_io)
        super().__init__(table, column_name, registry=registry)
        self.page_size = page_size
        self.fanout = (
            fanout
            if fanout is not None
            else max(4, page_size // ROUTING_ENTRY_BYTES)
        )
        self.leaf_capacity = max(4, page_size // LEAF_ENTRY_BYTES)
        self.pager = Pager(page_size=page_size, stats=stats_io)
        self._nodes: Dict[int, _Node] = {}
        self._root_id = self._new_node(is_leaf=True).page_id
        self._height = 1
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        for row_id in range(len(self.table)):
            if row_id in void:
                continue
            value = column[row_id]
            if value is None:
                continue
            self._insert(value, row_id)

    def _new_node(self, is_leaf: bool) -> _Node:
        page = self.pager.allocate()
        node = _Node(page.page_id, is_leaf)
        self._nodes[page.page_id] = node
        return node

    def _fetch(self, page_id: int, cost: Optional[LookupCost]) -> _Node:
        # The private pager is shared by every worker thread running a
        # lookup on this index: its physical read mutates the page
        # image and the I/O counters, so it runs under the index lock.
        # The pager is a simulated in-memory disk — holding the lock
        # across its "I/O" costs memory-copy time only (EBI303 is
        # suppressed for the same reason as in the buffer pool).
        with self._lock:
            self.pager.read(page_id)  # ebilint: disable=EBI303
        if cost is not None:
            cost.node_accesses += 1
        return self._nodes[page_id]

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def _insert(self, key: Any, row_id: int) -> None:
        split = self._insert_into(self._root_id, key, row_id)
        if split is not None:
            sep_key, right_id = split
            new_root = self._new_node(is_leaf=False)
            new_root.keys = [sep_key]
            new_root.children = [self._root_id, right_id]
            self._root_id = new_root.page_id
            self._height += 1

    def _insert_into(
        self, page_id: int, key: Any, row_id: int
    ) -> Optional[Tuple[Any, int]]:
        node = self._nodes[page_id]
        if node.is_leaf:
            return self._insert_leaf(node, key, row_id)
        pos = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[pos], key, row_id)
        if split is None:
            return None
        sep_key, right_id = split
        node.keys.insert(pos, sep_key)
        node.children.insert(pos + 1, right_id)
        if len(node.children) <= self.fanout:
            return None
        return self._split_internal(node)

    def _insert_leaf(
        self, node: _Node, key: Any, row_id: int
    ) -> Optional[Tuple[Any, int]]:
        pos = bisect.bisect_left(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            bisect.insort(node.entries[pos], row_id)
        else:
            node.keys.insert(pos, key)
            node.entries.insert(pos, [row_id])
        # A leaf entry is one (key, tuple-id) pair of 8 bytes — the
        # space unit behind the paper's 1.44 n/M * p estimate.  A leaf
        # holding a single oversized value-list cannot split; its
        # overflow is charged in nbytes().
        if (
            _leaf_entry_count(node) <= self.leaf_capacity
            or len(node.keys) < 2
        ):
            return None
        return self._split_leaf(node)

    def _split_leaf(self, node: _Node) -> Tuple[Any, int]:
        # Split at the key boundary closest to half the entry mass.
        target = _leaf_entry_count(node) // 2
        running = 0
        mid = len(node.keys) // 2
        for i, entry in enumerate(node.entries):
            running += len(entry)
            if running >= target:
                mid = max(1, min(i + 1, len(node.keys) - 1))
                break
        right = self._new_node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.entries = node.entries[mid:]
        node.keys = node.keys[:mid]
        node.entries = node.entries[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right.page_id
        return right.keys[0], right.page_id

    def _split_internal(self, node: _Node) -> Tuple[Any, int]:
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = self._new_node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right.page_id

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _descend_to_leaf(self, key: Any, cost: LookupCost) -> _Node:
        node = self._fetch(self._root_id, cost)
        while not node.is_leaf:
            pos = bisect.bisect_right(node.keys, key)
            node = self._fetch(node.children[pos], cost)
        return node

    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        nbits = self._row_count()
        result = BitVector(nbits)
        if isinstance(predicate, Equals):
            for row_id in self._search_eq(predicate.value, cost):
                result[row_id] = True
            return result
        if isinstance(predicate, InList):
            for value in predicate.values:
                for row_id in self._search_eq(value, cost):
                    result[row_id] = True
            return result
        if isinstance(predicate, Range):
            for row_id in self._search_range(predicate, cost):
                result[row_id] = True
            return result
        if isinstance(predicate, IsNull):
            # B-trees do not index NULLs; fall back to a column scan.
            column = self.table.column(self.column_name)
            void = self.table.void_rows()
            for row_id in range(nbits):
                if row_id not in void and column[row_id] is None:
                    result[row_id] = True
            cost.rows_checked += nbits
            return result
        raise UnsupportedPredicateError(f"unsupported predicate {predicate}")

    def _search_eq(self, key: Any, cost: LookupCost) -> List[int]:
        leaf = self._descend_to_leaf(key, cost)
        pos = bisect.bisect_left(leaf.keys, key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return list(leaf.entries[pos])
        return []

    def _search_range(
        self, predicate: Range, cost: LookupCost
    ) -> List[int]:
        rows: List[int] = []
        if predicate.low is not None:
            leaf = self._descend_to_leaf(predicate.low, cost)
        else:
            leaf = self._leftmost_leaf(cost)
        while leaf is not None:
            for key, entry in zip(leaf.keys, leaf.entries):
                if predicate.matches({predicate.column: key}):
                    rows.extend(entry)
                elif predicate.high is not None and key > predicate.high:
                    return rows
            if leaf.next_leaf is None:
                break
            leaf = self._fetch(leaf.next_leaf, cost)
        return rows

    def _leftmost_leaf(self, cost: LookupCost) -> _Node:
        node = self._fetch(self._root_id, cost)
        while not node.is_leaf:
            node = self._fetch(node.children[0], cost)
        return node

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self._height

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def nbytes(self) -> int:
        """Space charge: one page per node plus leaf overflow pages.

        A leaf whose value-lists exceed one page spills the excess
        into overflow pages; this keeps the measure aligned with the
        paper's per-tuple leaf cost while still charging whole pages.
        """
        overflow_pages = 0
        for node in self._nodes.values():
            if not node.is_leaf:
                continue
            entry_bytes = _leaf_entry_count(node) * LEAF_ENTRY_BYTES
            if entry_bytes > self.page_size:
                extra = entry_bytes - self.page_size
                overflow_pages += -(-extra // self.page_size)
        return (self.node_count + overflow_pages) * self.page_size

    def keys(self) -> List[Any]:
        """All keys in order (leaf chain walk, uncounted)."""
        result: List[Any] = []
        node = self._nodes[self._root_id]
        while not node.is_leaf:
            node = self._nodes[node.children[0]]
        while True:
            result.extend(node.keys)
            if node.next_leaf is None:
                return result
            node = self._nodes[node.next_leaf]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        value = row.get(self.column_name)
        if value is not None:
            self._insert(value, row_id)
        self.stats.maintenance_ops += self._height

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        if old is not None:
            self._remove(old, row_id)
        if new is not None:
            self._insert(new, row_id)
        self.stats.maintenance_ops += 2 * self._height

    def on_delete(self, row_id: int) -> None:
        value = self.table.column(self.column_name)[row_id]
        if value is not None:
            self._remove(value, row_id)
        self.stats.maintenance_ops += self._height

    def _remove(self, key: Any, row_id: int) -> None:
        """Remove one (key, row) pair; no rebalancing (DW append-mostly)."""
        node = self._nodes[self._root_id]
        while not node.is_leaf:
            pos = bisect.bisect_right(node.keys, key)
            node = self._nodes[node.children[pos]]
        pos = bisect.bisect_left(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            entry = node.entries[pos]
            if row_id in entry:
                entry.remove(row_id)
