"""Run-length compressed simple bitmap index.

Section 4 lists "compression techniques (e.g., run-length) for simple
bitmap indexes" among the standard remedies for sparsity.  This index
stores one :class:`~repro.bitmap.rle.RunLengthBitmap` per value;
logical operations run directly on the compressed form (run-merge),
so a sparse high-cardinality column costs far less space than the
uncompressed simple index — at the price the paper implies: per-value
vectors still number ``m``, so range searches still touch ``delta``
of them, and the encoded index keeps its access-count advantage.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.bitmap.bitvector import BitVector
from repro.bitmap.rle import RunLengthBitmap
from repro.errors import UnsupportedPredicateError
from repro.index.base import (
    Index,
    LookupCost,
    deprecated_positionals,
    range_values,
)
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.table.table import Table


class CompressedBitmapIndex(Index):
    """Simple bitmap index with run-length compressed vectors."""

    kind = "compressed-bitmap"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__, args, ("registry",)
        )
        registry = legacy.get("registry", registry)
        super().__init__(table, column_name, registry=registry)
        self._vectors: Dict[Any, RunLengthBitmap] = {}
        self._null_vector = RunLengthBitmap(len(table))
        self._build()

    def _build(self) -> None:
        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        positions: Dict[Any, list] = {}
        null_rows = []
        for row_id in range(len(self.table)):
            if row_id in void:
                continue
            value = column[row_id]
            if value is None:
                null_rows.append(row_id)
            else:
                positions.setdefault(value, []).append(row_id)
        nbits = len(self.table)
        for value, rows in positions.items():
            self._vectors[value] = RunLengthBitmap.from_bitvector(
                BitVector.from_indices(rows, nbits)
            )
        self._null_vector = RunLengthBitmap.from_bitvector(
            BitVector.from_indices(null_rows, nbits)
        )

    def rebuild(self) -> None:
        """Recompress every vector from the base table (called after a
        :mod:`repro.shard.reorder` row permutation)."""
        with self._lock:
            self._vectors = {}
            self._null_vector = RunLengthBitmap(len(self.table))
            self._build()

    # ------------------------------------------------------------------
    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        nbits = self._row_count()
        if isinstance(predicate, Equals):
            values = [predicate.value]
        elif isinstance(predicate, InList):
            values = list(predicate.values)
        elif isinstance(predicate, Range):
            values = range_values(self._vectors.keys(), predicate)
        elif isinstance(predicate, IsNull):
            cost.vectors_accessed += 1
            return self._null_vector.to_bitvector()
        else:
            raise UnsupportedPredicateError(
                f"unsupported predicate {predicate}"
            )
        result: Optional[RunLengthBitmap] = None
        for value in values:
            compressed = self._vectors.get(value)
            if compressed is None:
                continue
            cost.vectors_accessed += 1
            result = compressed if result is None else (result | compressed)
        if result is None:
            return BitVector(nbits)
        return result.to_bitvector()

    # ------------------------------------------------------------------
    @property
    def vector_count(self) -> int:
        return len(self._vectors)

    def compressed_vector(self, value: Any) -> Optional[RunLengthBitmap]:
        return self._vectors.get(value)

    def nbytes(self) -> int:
        """Compressed size: one WAH-style word per run."""
        total = self._null_vector.nbytes()
        for compressed in self._vectors.values():
            total += compressed.nbytes()
        return total

    def compression_ratio(self) -> float:
        """Uncompressed simple-index bytes / compressed bytes."""
        uncompressed = BitVector(self._row_count()).nbytes() * max(
            1, len(self._vectors)
        )
        compressed = max(1, self.nbytes())
        return uncompressed / compressed

    # ------------------------------------------------------------------
    # maintenance (append-oriented; updates rebuild the touched runs)
    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        value = row.get(self.column_name)
        for existing, compressed in self._vectors.items():
            compressed.append(existing == value and value is not None)
        self._null_vector.append(value is None)
        if value is not None and value not in self._vectors:
            bits = BitVector(row_id + 1)
            bits[row_id] = True
            self._vectors[value] = RunLengthBitmap.from_bitvector(bits)
            self.stats.maintenance_ops += row_id + 1
        self.stats.maintenance_ops += 1

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        self._rewrite(row_id, old, False)
        self._rewrite(row_id, new, True)
        self.stats.maintenance_ops += 1

    def on_delete(self, row_id: int) -> None:
        value = self.table.column(self.column_name)[row_id]
        self._rewrite(row_id, value, False)
        self.stats.maintenance_ops += 1

    def _rewrite(self, row_id: int, value: Any, bit: bool) -> None:
        """Flip one bit of one compressed vector (decompress-edit)."""
        if value is None:
            vector = self._null_vector.to_bitvector()
            vector[row_id] = bit
            self._null_vector = RunLengthBitmap.from_bitvector(vector)
            return
        compressed = self._vectors.get(value)
        if compressed is None:
            if not bit:
                return
            bits = BitVector(self._row_count())
            bits[row_id] = True
            self._vectors[value] = RunLengthBitmap.from_bitvector(bits)
            return
        vector = compressed.to_bitvector()
        if len(vector) < self._row_count():
            vector.resize(self._row_count())
        vector[row_id] = bit
        self._vectors[value] = RunLengthBitmap.from_bitvector(vector)
