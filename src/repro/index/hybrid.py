"""Hybrid B-tree/bitmap index — Section 3.2 and 4 of the paper.

"Instead of storing tuple-ids (value-lists) at the leaf-nodes of
B-trees, bitmap vectors are stored.  As the sparsity increases ...
the bit vectors are expressed as value-lists."  The paper's critique:
at very high cardinality every leaf entry degenerates to a value-list
and the hybrid reduces to a pure B-tree, losing bitmap cooperativity.

This implementation keys leaf entries by value and stores either a
:class:`BitVector` or a tuple-id list per value, chosen by a sparsity
threshold.  ``degeneration_ratio`` reports the fraction of entries
held as value-lists — the quantity the paper's argument predicts to
approach 1 as ``m`` grows.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.bitmap.bitvector import BitVector
from repro.errors import InvalidArgumentError, UnsupportedPredicateError
from repro.index.base import (
    Index,
    LookupCost,
    deprecated_positionals,
    range_values,
)
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.table.table import Table

Entry = Union[BitVector, List[int]]

TUPLE_ID_BYTES = 4
KEY_BYTES = 8


class HybridBitmapBTreeIndex(Index):
    """Per-value entries stored as bitmap or value-list by density.

    Parameters
    ----------
    sparsity_threshold:
        A value whose rows fill less than this fraction of the table
        is stored as a tuple-id list instead of a bitmap.  The classic
        storage break-even is 1/32 (a 32-bit tuple-id per set bit vs
        one bit per row); that is the default.
    """

    kind = "hybrid"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        registry: Optional[MetricsRegistry] = None,
        sparsity_threshold: float = 1.0 / 32.0,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__, args, ("sparsity_threshold",)
        )
        sparsity_threshold = legacy.get(
            "sparsity_threshold", sparsity_threshold
        )
        super().__init__(table, column_name, registry=registry)
        if not 0.0 < sparsity_threshold <= 1.0:
            raise InvalidArgumentError(
                f"sparsity_threshold must be in (0, 1], got "
                f"{sparsity_threshold}"
            )
        self.sparsity_threshold = sparsity_threshold
        self._entries: Dict[Any, Entry] = {}
        self._build()

    def _build(self) -> None:
        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        positions: Dict[Any, List[int]] = {}
        for row_id in range(len(self.table)):
            if row_id in void:
                continue
            value = column[row_id]
            if value is None:
                continue
            positions.setdefault(value, []).append(row_id)
        nbits = len(self.table)
        cutoff = max(1, int(self.sparsity_threshold * max(1, nbits)))
        for value, rows in positions.items():
            if len(rows) >= cutoff:
                self._entries[value] = BitVector.from_indices(rows, nbits)
            else:
                self._entries[value] = list(rows)

    # ------------------------------------------------------------------
    def degeneration_ratio(self) -> float:
        """Fraction of entries stored as value-lists (not bitmaps)."""
        if not self._entries:
            return 0.0
        lists = sum(
            1 for entry in self._entries.values() if isinstance(entry, list)
        )
        return lists / len(self._entries)

    def is_degenerate(self) -> bool:
        """True when the hybrid has effectively become a B-tree."""
        return self.degeneration_ratio() >= 0.999

    def nbytes(self) -> int:
        total = len(self._entries) * KEY_BYTES
        for entry in self._entries.values():
            if isinstance(entry, BitVector):
                total += entry.nbytes()
            else:
                total += len(entry) * TUPLE_ID_BYTES
        return total

    # ------------------------------------------------------------------
    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        nbits = self._row_count()
        if isinstance(predicate, Equals):
            values = [predicate.value]
        elif isinstance(predicate, InList):
            values = list(predicate.values)
        elif isinstance(predicate, Range):
            values = range_values(self._entries.keys(), predicate)
        elif isinstance(predicate, IsNull):
            raise UnsupportedPredicateError(
                "hybrid index does not index NULLs"
            )
        else:
            raise UnsupportedPredicateError(
                f"unsupported predicate {predicate}"
            )
        result = BitVector(nbits)
        for value in values:
            entry = self._entries.get(value)
            if entry is None:
                continue
            cost.vectors_accessed += 1
            if isinstance(entry, BitVector):
                result |= entry
            else:
                cost.rows_checked += len(entry)
                for row_id in entry:
                    result[row_id] = True
        return result

    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        value = row.get(self.column_name)
        nbits = row_id + 1
        for entry in self._entries.values():
            if isinstance(entry, BitVector):
                entry.resize(nbits)
        if value is None:
            return
        entry = self._entries.get(value)
        if entry is None:
            self._entries[value] = [row_id]
        elif isinstance(entry, BitVector):
            entry[row_id] = True
        else:
            entry.append(row_id)
            self._maybe_promote(value)
        self.stats.maintenance_ops += 1

    def _maybe_promote(self, value: Any) -> None:
        """Convert a grown value-list back into a bitmap."""
        entry = self._entries[value]
        if not isinstance(entry, list):
            return
        nbits = self._row_count()
        cutoff = max(1, int(self.sparsity_threshold * max(1, nbits)))
        if len(entry) >= cutoff:
            self._entries[value] = BitVector.from_indices(entry, nbits)

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        self._discard(old, row_id)
        if new is not None:
            entry = self._entries.get(new)
            if entry is None:
                self._entries[new] = [row_id]
            elif isinstance(entry, BitVector):
                entry[row_id] = True
            else:
                entry.append(row_id)
                entry.sort()
                self._maybe_promote(new)
        self.stats.maintenance_ops += 1

    def on_delete(self, row_id: int) -> None:
        value = self.table.column(self.column_name)[row_id]
        self._discard(value, row_id)
        self.stats.maintenance_ops += 1

    def _discard(self, value: Any, row_id: int) -> None:
        if value is None:
            return
        entry = self._entries.get(value)
        if entry is None:
            return
        if isinstance(entry, BitVector):
            entry[row_id] = False
        elif row_id in entry:
            entry.remove(row_id)
