"""Simple bitmap index (O'Neil, Model 204; Section 2.1 of the paper).

One bitmap vector per distinct value.  NULLs and deleted rows get the
dedicated ``B_NULL`` and ``B_NotExist`` vectors the paper describes as
"the simple way"; consequently every negation/complement query must
AND the existence vector — the overhead Theorem 2.1 eliminates for
encoded bitmap indexes.

Cost model: a lookup touches one vector per selected value (``c_s`` =
δ for a δ-wide range search), plus the existence vector when the
query semantics require it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.bitmap.bitvector import BitVector
from repro.errors import UnsupportedPredicateError
from repro.index.base import Index, LookupCost, range_values
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.table.table import Table


class SimpleBitmapIndex(Index):
    """The collection ``{B_v : v in domain(A)}`` plus NULL/existence."""

    kind = "simple-bitmap"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(table, column_name, registry=registry)
        self._vectors: Dict[Any, BitVector] = {}
        self._null_vector = BitVector(len(table))
        self._exists_vector = BitVector(len(table))
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        column = self.table.column(self.column_name)
        nbits = len(self.table)
        void = self.table.void_rows()
        for row_id in range(nbits):
            if row_id in void:
                continue
            self._exists_vector[row_id] = True
            value = column[row_id]
            if value is None:
                self._null_vector[row_id] = True
                continue
            vector = self._vectors.get(value)
            if vector is None:
                vector = BitVector(nbits)
                self._vectors[value] = vector
            vector[row_id] = True

    def rebuild(self) -> None:
        """Reset and rebuild every vector from the base table (called
        after a :mod:`repro.shard.reorder` row permutation)."""
        with self._lock:
            nbits = len(self.table)
            self._vectors = {}
            self._null_vector = BitVector(nbits)
            self._exists_vector = BitVector(nbits)
            self._build()

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        nbits = self._row_count()
        if isinstance(predicate, Equals):
            return self._fetch_value(predicate.value, nbits, cost)
        if isinstance(predicate, InList):
            result = BitVector(nbits)
            for value in predicate.values:
                result |= self._fetch_value(value, nbits, cost)
            return result
        if isinstance(predicate, Range):
            selected = range_values(self._vectors.keys(), predicate)
            result = BitVector(nbits)
            for value in selected:
                result |= self._fetch_value(value, nbits, cost)
            return result
        if isinstance(predicate, IsNull):
            cost.vectors_accessed += 1
            return self._null_vector.copy()
        raise UnsupportedPredicateError(f"unsupported predicate {predicate}")

    def _fetch_value(
        self, value: Any, nbits: int, cost: LookupCost
    ) -> BitVector:
        vector = self._vectors.get(value)
        if vector is None:
            return BitVector(nbits)
        cost.vectors_accessed += 1
        return vector.copy()

    # ------------------------------------------------------------------
    # properties the analysis reads
    # ------------------------------------------------------------------
    @property
    def vector_count(self) -> int:
        """``h = |A|`` (+2 for NULL/existence) — paper's space driver."""
        return len(self._vectors)

    def vector_for(self, value: Any) -> Optional[BitVector]:
        return self._vectors.get(value)

    def existence_vector(self) -> BitVector:
        return self._exists_vector.copy()

    def average_sparsity(self) -> float:
        """Mean sparsity over value vectors; ~ (m-1)/m by Section 3.1."""
        if not self._vectors:
            return 0.0
        total = sum(vec.sparsity() for vec in self._vectors.values())
        return total / len(self._vectors)

    def nbytes(self) -> int:
        per_vector = BitVector(self._row_count()).nbytes()
        return per_vector * (len(self._vectors) + 2)

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        value = row.get(self.column_name)
        nbits = row_id + 1
        for vector in self._vectors.values():
            vector.resize(nbits)
        self._null_vector.resize(nbits)
        self._exists_vector.resize(nbits)
        self._exists_vector[row_id] = True
        if value is None:
            self._null_vector[row_id] = True
        else:
            vector = self._vectors.get(value)
            if vector is None:
                # Domain expansion: a full new vector of |T| bits must
                # be written — the O(|T|) term of Section 3.1.
                vector = BitVector(nbits)
                self._vectors[value] = vector
                self.stats.maintenance_ops += nbits
            vector[row_id] = True
        self.stats.maintenance_ops += 1

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        if old is None:
            self._null_vector[row_id] = False
        elif old in self._vectors:
            self._vectors[old][row_id] = False
        if new is None:
            self._null_vector[row_id] = True
        else:
            vector = self._vectors.get(new)
            if vector is None:
                vector = BitVector(self._row_count())
                self._vectors[new] = vector
                self.stats.maintenance_ops += self._row_count()
            vector[row_id] = True
        self.stats.maintenance_ops += 1

    def on_delete(self, row_id: int) -> None:
        value = self.table.column(self.column_name)[row_id]
        if value is None:
            self._null_vector[row_id] = False
        elif value in self._vectors:
            self._vectors[value][row_id] = False
        self._exists_vector[row_id] = False
        self.stats.maintenance_ops += 1
