"""Range-based bitmap index (Wu & Yu; Section 4 of the paper).

Partitions a high-cardinality (possibly skewed) domain into buckets
of roughly equal population and keeps one *simple* bitmap per bucket.
A range query reads the bitmaps of fully covered buckets and, for the
partially covered edge buckets, must verify candidate rows against
the base data — the "candidate check" cost the encoded bitmap index
avoids.  The paper contrasts this distribution-driven partitioning
with its own predicate-driven range encoding.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.bitmap.bitvector import BitVector
from repro.errors import (
    IndexBuildError,
    InvalidArgumentError,
    UnsupportedPredicateError,
)
from repro.index.base import Index, LookupCost, deprecated_positionals
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import Equals, InList, IsNull, Predicate, Range
from repro.table.table import Table


class RangeBitmapIndex(Index):
    """Equal-population bucket bitmaps over an ordered domain."""

    kind = "range-bitmap"

    def __init__(
        self,
        table: Table,
        column_name: str,
        *args: Any,
        registry: Optional[MetricsRegistry] = None,
        buckets: int = 16,
    ) -> None:
        legacy = deprecated_positionals(
            type(self).__name__, args, ("buckets",)
        )
        buckets = legacy.get("buckets", buckets)
        super().__init__(table, column_name, registry=registry)
        if buckets < 1:
            raise InvalidArgumentError(f"buckets must be >= 1, got {buckets}")
        self.bucket_target = buckets
        self._boundaries: List[Any] = []  # upper bound per bucket (incl.)
        self._vectors: List[BitVector] = []
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        live_values = [
            (column[row_id], row_id)
            for row_id in range(len(self.table))
            if row_id not in void and column[row_id] is not None
        ]
        if not live_values:
            raise IndexBuildError(
                f"column {self.column_name!r} has no indexable values"
            )
        live_values.sort(key=lambda pair: pair[0])
        buckets = min(self.bucket_target, len(live_values))
        per_bucket = -(-len(live_values) // buckets)

        nbits = len(self.table)
        start = 0
        while start < len(live_values):
            end = min(start + per_bucket, len(live_values))
            # Never split rows sharing one value across buckets.
            while (
                end < len(live_values)
                and live_values[end][0] == live_values[end - 1][0]
            ):
                end += 1
            vector = BitVector(nbits)
            for _, row_id in live_values[start:end]:
                vector[row_id] = True
            self._vectors.append(vector)
            self._boundaries.append(live_values[end - 1][0])
            start = end

    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        return len(self._vectors)

    def bucket_bounds(self) -> List[Tuple[Any, Any]]:
        """(low, high] bounds per bucket (low of first is open)."""
        bounds = []
        previous = None
        for upper in self._boundaries:
            bounds.append((previous, upper))
            previous = upper
        return bounds

    def nbytes(self) -> int:
        per_vector = BitVector(self._row_count()).nbytes()
        return per_vector * len(self._vectors)

    # ------------------------------------------------------------------
    def _bucket_of(self, value: Any) -> int:
        for i, upper in enumerate(self._boundaries):
            if value <= upper:
                return i
        return len(self._boundaries) - 1

    def _lookup(self, predicate: Predicate, cost: LookupCost) -> BitVector:
        nbits = self._row_count()
        if isinstance(predicate, Equals):
            predicate = Range(
                predicate.column, predicate.value, predicate.value
            )
        if isinstance(predicate, InList):
            result = BitVector(nbits)
            for value in predicate.values:
                result |= self._lookup(
                    Range(self.column_name, value, value), cost
                )
            return result
        if isinstance(predicate, IsNull):
            raise UnsupportedPredicateError(
                "range-based bitmaps do not index NULLs"
            )
        if not isinstance(predicate, Range):
            raise UnsupportedPredicateError(
                f"unsupported predicate {predicate}"
            )

        column = self.table.column(self.column_name)
        void = self.table.void_rows()
        result = BitVector(nbits)
        for i, vector in enumerate(self._vectors):
            low, high = self._bucket_range(i)
            coverage = self._coverage(predicate, low, high)
            if coverage == "none":
                continue
            cost.vectors_accessed += 1
            if coverage == "full":
                result |= vector
            else:
                # Edge bucket: candidate rows must be checked against
                # the base table.
                for row_id in vector.indices():
                    row_id = int(row_id)
                    cost.rows_checked += 1
                    if row_id in void:
                        continue
                    value = column[row_id]
                    if value is not None and predicate.matches(
                        {self.column_name: value}
                    ):
                        result[row_id] = True
        return result

    def _bucket_range(self, i: int) -> Tuple[Any, Any]:
        low = self._boundaries[i - 1] if i > 0 else None
        return low, self._boundaries[i]

    def _coverage(self, predicate: Range, low: Any, high: Any) -> str:
        """Classify a bucket as fully/partially/not covered.

        The bucket holds values ``v`` with ``low < v <= high`` (``low``
        is ``None`` for the first bucket, meaning unbounded below).
        """
        # Disjoint below: every bucket value <= high < predicate range.
        if predicate.low is not None:
            if high < predicate.low or (
                high == predicate.low and not predicate.low_inclusive
            ):
                return "none"
        # Disjoint above: every bucket value > low >= predicate range.
        if predicate.high is not None and low is not None:
            if low >= predicate.high:
                return "none"
        # Full coverage: every possible bucket value satisfies both
        # bounds.  Bucket values are > low, so plow <= low suffices on
        # the lower side regardless of inclusiveness.
        lower_ok = predicate.low is None or (
            low is not None and predicate.low <= low
        )
        upper_ok = predicate.high is None or (
            high <= predicate.high
            if predicate.high_inclusive
            else high < predicate.high
        )
        if lower_ok and upper_ok:
            return "full"
        return "partial"

    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        value = row.get(self.column_name)
        nbits = row_id + 1
        for vector in self._vectors:
            vector.resize(nbits)
        if value is not None:
            bucket = self._bucket_of(value)
            self._vectors[bucket][row_id] = True
        self.stats.maintenance_ops += 1

    def _apply_update(self, row_id: int, old: Any, new: Any) -> None:
        if old is not None:
            self._vectors[self._bucket_of(old)][row_id] = False
        if new is not None:
            self._vectors[self._bucket_of(new)][row_id] = True
        self.stats.maintenance_ops += 1

    def on_delete(self, row_id: int) -> None:
        value = self.table.column(self.column_name)[row_id]
        if value is not None:
            self._vectors[self._bucket_of(value)][row_id] = False
        self.stats.maintenance_ops += 1
