"""Bitmapped join index (O'Neil & Graefe; Section 4 of the paper).

A join index pre-computes the join between a fact table and a
dimension: for each dimension row, a bitmap over the fact table marks
the matching fact rows.  A selection on any dimension attribute is
evaluated on the (small) dimension table, then the qualifying
dimension rows' fact bitmaps are OR-ed — a star join without touching
the fact table's columns.

To keep the vector count logarithmic (the whole point of the paper),
the fact-side bitmaps are stored as an *encoded* bitmap index over
the fact table's foreign key; the join index contributes the
dimension-side evaluation and the mapping from dimension rows to key
values.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Hashable, List, Optional

from repro.bitmap.bitvector import BitVector
from repro.encoding.mapping import MappingTable
from repro.errors import SchemaError
from repro.index.base import (
    IndexStatistics,
    LookupCost,
    deprecated_keyword,
    deprecated_positionals,
)
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.obs.metrics import MetricsRegistry
from repro.query.predicates import InList, Predicate
from repro.table.table import Table


class BitmapJoinIndex:
    """Join index between a fact foreign key and a dimension table.

    Parameters
    ----------
    fact, fact_column:
        The fact table and its foreign-key column.
    dimension, dimension_key:
        The dimension table and its key column.
    encoding:
        Optional encoding for the fact-side encoded bitmap index
        (e.g. a hierarchy encoding over the dimension keys).
        ``mapping=`` is the deprecated alias.
    """

    kind = "bitmap-join"

    def __init__(
        self,
        fact: Table,
        fact_column: str,
        dimension: Table,
        dimension_key: str,
        *args: Any,
        encoding: Optional[MappingTable] = None,
        registry: Optional[MetricsRegistry] = None,
        mapping: Optional[MappingTable] = None,
    ) -> None:
        if dimension_key not in dimension:
            raise SchemaError(
                f"dimension {dimension.name!r} has no column "
                f"{dimension_key!r}"
            )
        legacy = deprecated_positionals(
            type(self).__name__, args, ("encoding",)
        )
        encoding = legacy.get("encoding", encoding)
        if mapping is not None:
            encoding = deprecated_keyword(
                type(self).__name__, "mapping", "encoding", mapping
            )
        self.fact = fact
        self.fact_column = fact_column
        self.dimension = dimension
        self.dimension_key = dimension_key
        self.fact_index = EncodedBitmapIndex(
            fact, fact_column, encoding=encoding, registry=registry
        )
        #: Guards stats and last-lookup trace state shared across
        #: worker threads (see docs/concurrency.md).
        self._lock = threading.RLock()
        self.stats = IndexStatistics()
        self.last_cost = LookupCost()

    # ------------------------------------------------------------------
    def join_keys(self, dimension_predicate: Predicate) -> List[Hashable]:
        """Dimension keys whose rows satisfy the predicate.

        Evaluated by scanning the dimension — dimensions are small by
        star-schema design; the fact side never pays.
        """
        keys: List[Hashable] = []
        checked = 0
        for row in self.dimension.scan():
            checked += 1
            if dimension_predicate.matches(row):
                keys.append(row[self.dimension_key])
        with self._lock:
            self.last_cost = LookupCost(rows_checked=checked)
        return keys

    def lookup(self, dimension_predicate: Predicate) -> BitVector:
        """Fact rows joining dimension rows that satisfy the predicate.

        The dimension scan produces the qualifying key IN-list; the
        encoded bitmap index on the fact's foreign key evaluates it
        with the usual logical reduction.
        """
        keys = self.join_keys(dimension_predicate)
        dimension_cost = self.last_cost
        if not keys:
            result = BitVector(len(self.fact))
            with self._lock:
                self.stats.record(dimension_cost)
            return result
        result = self.fact_index.lookup(
            InList(self.fact_column, keys)
        )
        cost = LookupCost(
            vectors_accessed=(
                self.fact_index.last_cost.vectors_accessed
            ),
            rows_checked=dimension_cost.rows_checked,
        )
        with self._lock:
            self.last_cost = cost
            self.stats.record(cost)
        return result

    def join_rows(
        self, dimension_predicate: Predicate
    ) -> List[Dict[str, Any]]:
        """Materialised star join: fact rows + their dimension row."""
        dim_by_key: Dict[Hashable, Dict[str, Any]] = {}
        for row in self.dimension.scan():
            if dimension_predicate.matches(row):
                dim_by_key[row[self.dimension_key]] = row
        vector = self.lookup(dimension_predicate)
        joined = []
        for row_id in vector.indices():
            fact_row = self.fact.row(int(row_id))
            dim_row = dim_by_key.get(fact_row[self.fact_column])
            if dim_row is None:
                continue
            combined = dict(fact_row)
            combined.update(
                {
                    f"{self.dimension.name}.{name}": value
                    for name, value in dim_row.items()
                }
            )
            joined.append(combined)
        return joined

    def nbytes(self) -> int:
        return self.fact_index.nbytes()

    def __repr__(self) -> str:
        return (
            f"BitmapJoinIndex({self.fact.name}.{self.fact_column} -> "
            f"{self.dimension.name}.{self.dimension_key})"
        )
