"""``repro.Database`` — the unified facade over the whole stack.

One object ties together tables (plain or partitioned), index
construction, planned/parallel query execution, EXPLAIN,
persistence, and fsck — the pieces that previously had to be wired
by hand through :class:`~repro.table.catalog.Catalog`,
:class:`~repro.query.executor.Executor`,
:class:`~repro.shard.executor.ParallelExecutor` and
:mod:`repro.index.serialization`.

Quickstart::

    from repro import Database, Equals

    db = Database()
    db.create_table(
        "sales",
        {"product": ["a", "b", "a"], "qty": [1, 2, 3]},
        partitions=2,
    )
    db.create_index("sales", "product")
    result = db.query("sales", Equals("product", "a"))
    print(result.row_ids())

Saving writes a directory: a ``manifest.json`` with the table data
(column values, void rows, partition bounds, index specs) plus one
checksummed ``.ebi`` payload per encoded-bitmap index — per
partition child for partitioned tables.  Loading rebuilds the lot;
a damaged ``.ebi`` payload does not fail the load: the affected
index (or partition child) is rebuilt from the base data and marked
``degraded`` so the planner quarantines it until
:meth:`Database.fsck` re-audits it.
"""

from __future__ import annotations

import json
import os
import threading
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
    cast,
)

from repro.encoding.mapping import MappingTable
from repro.errors import (
    CorruptIndexError,
    IndexBuildError,
    InvalidArgumentError,
    SchemaError,
)
from repro.index import serialization
from repro.index.base import Index
from repro.index.bitsliced import BitSlicedIndex
from repro.index.btree import BPlusTreeIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.paged import PagedEncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.index.verify import FsckReport, verify_index
from repro.index.verify import repair as repair_index
from repro.obs.metrics import MetricsRegistry
from repro.query.executor import Executor, QueryResult
from repro.query.predicates import Predicate
from repro.shard.executor import ParallelExecutor
from repro.shard.index import PartitionedIndex
from repro.shard.partition import Partition, PartitionedTable
from repro.table.catalog import Catalog
from repro.table.table import Table

#: Index kinds :meth:`Database.create_index` knows how to build (and,
#: for non-encoded kinds, rebuild from base data on load).
INDEX_KINDS: Dict[str, Callable[..., Index]] = {
    "encoded": EncodedBitmapIndex,
    "simple": SimpleBitmapIndex,
    "paged": PagedEncodedBitmapIndex,
    "btree": BPlusTreeIndex,
    "bitsliced": BitSlicedIndex,
}

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

AnyTable = Union[Table, PartitionedTable]


class Database:
    """Facade over catalog, indexes, executors and persistence.

    Parameters
    ----------
    registry:
        Optional metrics sink for every query run through the facade;
        defaults to the calling thread's current registry per query.
    """

    def __init__(
        self, *, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.catalog = Catalog()  # ebi: shared-readonly
        self.registry = registry  # ebi: shared-readonly
        #: Guards the lazily built per-table executor map — ``query``
        #: is part of the facade's thread-safe surface.
        self._lock = threading.Lock()
        self._partitioned: Dict[str, PartitionedTable] = {}
        self._executors: Dict[str, ParallelExecutor] = {}
        #: One entry per ``create_index`` call: table, column, kind.
        self._index_specs: List[Dict[str, str]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(
        cls,
        catalog: Catalog,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Database":
        """Wrap an already-populated catalog (CLI scenarios, tests)."""
        db = cls(registry=registry)
        db.catalog = catalog
        for index in catalog.all_indexes():
            db._index_specs.append(
                {
                    "table": index.table.name,
                    "column": getattr(index, "column_name", ""),
                    "kind": getattr(index, "kind", "encoded"),
                }
            )
        return db

    def create_table(
        self,
        name: str,
        columns: Union[Mapping[str, Sequence[Any]], Sequence[str]],
        *,
        partitions: Optional[int] = None,
    ) -> AnyTable:
        """Create a table from column data or a bare schema.

        ``columns`` is either a mapping of column name to values
        (the table is populated) or a sequence of column names (an
        empty table).  ``partitions=N`` makes it a
        :class:`~repro.shard.partition.PartitionedTable` with
        word-aligned row-range partitions.
        """
        if isinstance(columns, Mapping):
            data: Mapping[str, Sequence[Any]] = columns
        else:
            data = {column: [] for column in columns}
        if not data:
            raise SchemaError("a table needs at least one column")
        table: AnyTable
        if partitions is not None:
            table = PartitionedTable.from_columns(
                name, data, partitions=partitions
            )
            self._partitioned[name] = table
            self.catalog.register_table(cast(Table, table))
        else:
            table = Table.from_columns(name, dict(data))
            self.catalog.register_table(table)
        return table

    def table(self, name: str) -> AnyTable:
        """The table registered under ``name`` (raises if absent)."""
        if name in self._partitioned:
            return self._partitioned[name]
        return self.catalog.table(name)

    def tables(self) -> List[str]:
        return sorted(table.name for table in self.catalog.tables())

    def is_partitioned(self, name: str) -> bool:
        return name in self._partitioned

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_index(
        self,
        table_name: str,
        column_name: str,
        *,
        kind: str = "encoded",
        encoding: Optional[MappingTable] = None,
        factory: Optional[Callable[[Table, str], Index]] = None,
        **options: Any,
    ) -> Index:
        """Build and register an index on one column.

        ``kind`` selects the index class (see :data:`INDEX_KINDS`);
        for partitioned tables one child of that kind is built per
        partition behind a
        :class:`~repro.shard.index.PartitionedIndex`.  ``factory``
        overrides the per-partition constructor entirely.
        """
        if kind not in INDEX_KINDS:
            raise InvalidArgumentError(
                f"unknown index kind {kind!r}; expected one of "
                f"{sorted(INDEX_KINDS)}"
            )
        table = self.table(table_name)
        index: Index
        if isinstance(table, PartitionedTable):
            child_factory = factory or self._child_factory(
                kind, encoding, options
            )
            index = PartitionedIndex(
                table, column_name, factory=child_factory
            )
            self.catalog.register_index(index, attach=False)
        else:
            if encoding is not None:
                options["encoding"] = encoding
            index = INDEX_KINDS[kind](table, column_name, **options)
            self.catalog.register_index(index)
        self._index_specs.append(
            {"table": table_name, "column": column_name, "kind": kind}
        )
        return index

    @staticmethod
    def _child_factory(
        kind: str,
        encoding: Optional[MappingTable],
        options: Dict[str, Any],
    ) -> Callable[[Table, str], Index]:
        build = INDEX_KINDS[kind]
        kwargs = dict(options)
        if encoding is not None:
            kwargs["encoding"] = encoding

        def factory(table: Table, column_name: str) -> Index:
            return build(table, column_name, **kwargs)

        return factory

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(  # ebi: worker-entry
        self,
        table_name: str,
        predicate: Predicate,
        *,
        workers: Optional[int] = None,
        trace: bool = False,
    ) -> QueryResult:
        """Plan and run one selection.

        Partitioned tables run on the partition-parallel executor
        (``workers=`` overrides its thread count) and return a
        :class:`~repro.shard.executor.PartitionedQueryResult`; plain
        tables run on the classic planned executor.
        """
        if table_name in self._partitioned:
            return self._executor(table_name).execute(
                predicate, workers=workers, trace=trace
            )
        executor = Executor(self.catalog, registry=self.registry)
        return executor.select(
            self.catalog.table(table_name), predicate, trace=trace
        )

    def query_many(  # ebi: worker-entry
        self,
        table_name: str,
        predicates: Sequence[Predicate],
        *,
        workers: Optional[int] = None,
        trace: bool = False,
    ) -> List[QueryResult]:
        """Run a batch of selections, sharing leaf-vector reads.

        The whole batch is planned up front; every query in it
        shares one leaf-vector cache, so two queries selecting on
        the same leaf predicate pay its index read once (for
        partitioned tables this happens per partition, inside
        :meth:`~repro.shard.executor.ParallelExecutor.execute_many`).
        """
        predicates = list(predicates)
        if table_name in self._partitioned:
            return list(
                self._executor(table_name).execute_many(
                    predicates, workers=workers, trace=trace
                )
            )
        executor = Executor(self.catalog, registry=self.registry)
        table = self.catalog.table(table_name)
        plans = executor.planner.plan_many(table, predicates)
        leaf_cache: Dict[Predicate, Any] = {}
        return [
            executor.execute(plan, trace=trace, leaf_cache=leaf_cache)
            for plan in plans
        ]

    def explain(self, table_name: str, predicate: Predicate) -> str:
        """EXPLAIN without reading any vectors.

        Partitioned tables render one plan per partition with row
        spans; plain tables render the classic single plan.
        """
        if table_name in self._partitioned:
            return self._executor(table_name).explain(predicate)
        executor = Executor(self.catalog, registry=self.registry)
        plan = executor.planner.plan(
            self.catalog.table(table_name), predicate
        )
        return plan.explain()

    def _executor(self, table_name: str) -> ParallelExecutor:
        with self._lock:
            executor = self._executors.get(table_name)
        if executor is not None:
            return executor
        # Build outside the lock (executor construction spins up a
        # worker pool); first-one-in wins on concurrent misses.
        built = ParallelExecutor(
            self._partitioned[table_name], registry=self.registry
        )
        with self._lock:
            executor = self._executors.setdefault(table_name, built)
        return executor

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def fsck(self, *, repair: bool = False) -> Dict[str, FsckReport]:
        """Audit every encoded-bitmap index (partition children too).

        Each audited index's ``degraded`` flag is updated from the
        verdict — a failing index is quarantined from planning, a
        clean re-audit lifts an earlier quarantine.  With
        ``repair=True``, damaged vectors are rebuilt from the base
        column and the index re-audited.
        """
        reports: Dict[str, FsckReport] = {}
        for label, index in self._encoded_indexes():
            report = verify_index(index, mark=True)
            if repair and not report.ok:
                repair_index(index)
                report = verify_index(index, mark=True)
            reports[label] = report
        return reports

    def _encoded_indexes(self) -> List[Any]:
        found: List[Any] = []
        for index in self.catalog.all_indexes():
            if isinstance(index, PartitionedIndex):
                for i, child in enumerate(index.children):
                    if isinstance(child, EncodedBitmapIndex):
                        found.append(
                            (
                                f"{index.table.name}."
                                f"{index.column_name}.p{i}",
                                child,
                            )
                        )
            elif isinstance(index, EncodedBitmapIndex):
                found.append(
                    (f"{index.table.name}.{index.column_name}", index)
                )
        return found

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Write the database to a directory.

        ``manifest.json`` carries the table data and index specs;
        every encoded-bitmap index adds one checksummed ``.ebi``
        payload (per partition child for partitioned tables) that
        :meth:`load` verifies and :meth:`fsck` can audit offline.
        """
        os.makedirs(directory, exist_ok=True)
        manifest: Dict[str, Any] = {
            "version": MANIFEST_VERSION,
            "tables": [],
            "indexes": list(self._index_specs),
        }
        for table in self.catalog.tables():
            name = table.name
            entry: Dict[str, Any] = {
                "name": name,
                "partitioned": name in self._partitioned,
                "columns": {
                    column: list(table.column(column).values())
                    for column in table.column_names
                },
                "void_rows": sorted(table.void_rows()),
            }
            if name in self._partitioned:
                ptable = self._partitioned[name]
                bounds = [p.offset for p in ptable.partitions]
                bounds.append(len(ptable))
                entry["bounds"] = bounds
            manifest["tables"].append(entry)
        for index in self.catalog.all_indexes():
            if isinstance(index, PartitionedIndex):
                for i, child in enumerate(index.children):
                    if isinstance(child, EncodedBitmapIndex):
                        serialization.save(
                            child,
                            os.path.join(
                                directory,
                                self._payload_name(
                                    index.table.name,
                                    index.column_name,
                                    i,
                                ),
                            ),
                        )
            elif isinstance(index, EncodedBitmapIndex):
                serialization.save(
                    index,
                    os.path.join(
                        directory,
                        self._payload_name(
                            index.table.name, index.column_name
                        ),
                    ),
                )
        path = os.path.join(directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)

    @staticmethod
    def _payload_name(
        table: str, column: str, partition: Optional[int] = None
    ) -> str:
        if partition is None:
            return f"{table}.{column}.ebi"
        return f"{table}.{column}.p{partition}.ebi"

    @classmethod
    def load(
        cls,
        directory: str,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Database":
        """Rebuild a database saved with :meth:`save`.

        Partition bounds are restored exactly as saved (appends may
        have grown the last partition past what
        :func:`~repro.shard.partition.partition_bounds` would derive
        today).  A corrupt or missing ``.ebi`` payload never fails
        the load: that index is rebuilt from the base data and
        marked ``degraded`` until the next :meth:`fsck` audit.
        """
        with open(
            os.path.join(directory, MANIFEST_NAME), encoding="utf-8"
        ) as handle:
            manifest = json.load(handle)
        if manifest.get("version") != MANIFEST_VERSION:
            raise CorruptIndexError(
                f"unsupported manifest version "
                f"{manifest.get('version')!r}"
            )
        db = cls(registry=registry)
        for entry in manifest["tables"]:
            db._load_table(entry)
        for spec in manifest.get("indexes", []):
            db._load_index(directory, spec)
        return db

    def _load_table(self, entry: Dict[str, Any]) -> None:
        name = entry["name"]
        columns: Dict[str, List[Any]] = entry["columns"]
        if entry.get("partitioned"):
            bounds: List[int] = entry["bounds"]
            parts: List[Partition] = []
            for i in range(len(bounds) - 1):
                lo, hi = bounds[i], bounds[i + 1]
                chunk = Table.from_columns(
                    f"{name}.p{i}",
                    {
                        column: values[lo:hi]
                        for column, values in columns.items()
                    },
                )
                parts.append(Partition(i, lo, chunk))
            ptable = PartitionedTable(name, parts)
            for row_id in entry.get("void_rows", []):
                ptable.delete(row_id)
            self._partitioned[name] = ptable
            self.catalog.register_table(cast(Table, ptable))
        else:
            table = Table.from_columns(name, columns)
            for row_id in entry.get("void_rows", []):
                table.delete(row_id)
            self.catalog.register_table(table)

    def _load_index(self, directory: str, spec: Dict[str, str]) -> None:
        table_name = spec["table"]
        column_name = spec["column"]
        kind = spec["kind"]
        if kind != "encoded":
            # Non-encoded kinds have no payload format; rebuild from
            # the base data.
            self.create_index(table_name, column_name, kind=kind)
            return
        table = self.table(table_name)
        if isinstance(table, PartitionedTable):
            damaged: List[int] = []
            counter = iter(range(len(table.partitions)))

            def factory(chunk: Table, column: str) -> Index:
                i = next(counter)
                path = os.path.join(
                    directory,
                    self._payload_name(table_name, column, i),
                )
                child = self._load_payload(path, chunk, column)
                if child is None:
                    damaged.append(i)
                    return EncodedBitmapIndex(chunk, column)
                return child

            index: Index = PartitionedIndex(
                table, column_name, factory=factory
            )
            for i in damaged:
                cast(PartitionedIndex, index).child(i).degraded = True
            self.catalog.register_index(index, attach=False)
        else:
            path = os.path.join(
                directory, self._payload_name(table_name, column_name)
            )
            loaded = self._load_payload(path, table, column_name)
            if loaded is None:
                loaded = EncodedBitmapIndex(table, column_name)
                loaded.degraded = True
            self.catalog.register_index(loaded)
        self._index_specs.append(dict(spec))

    @staticmethod
    def _load_payload(
        path: str, table: Table, column_name: str
    ) -> Optional[EncodedBitmapIndex]:
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
            index = serialization.loads(payload, table)
        except (OSError, IndexBuildError):
            return None
        if index.column_name != column_name:
            return None
        return index

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Database(tables={self.tables()}, "
            f"indexes={len(self._index_specs)})"
        )
