"""``repro.Database`` — the unified facade over the whole stack.

One object ties together tables (plain or partitioned), index
construction, planned/parallel query execution, EXPLAIN,
persistence, and fsck — the pieces that previously had to be wired
by hand through :class:`~repro.table.catalog.Catalog`,
:class:`~repro.query.executor.Executor`,
:class:`~repro.shard.executor.ParallelExecutor` and
:mod:`repro.index.serialization`.

Quickstart::

    from repro import Database, Equals

    db = Database()
    db.create_table(
        "sales",
        {"product": ["a", "b", "a"], "qty": [1, 2, 3]},
        partitions=2,
    )
    db.create_index("sales", "product")
    result = db.query("sales", Equals("product", "a"))
    print(result.row_ids())

Saving writes a directory: a ``manifest.json`` with the table data
(column values, void rows, partition bounds, index specs) plus one
checksummed ``.ebi`` payload per encoded-bitmap index — per
partition child for partitioned tables.  Loading rebuilds the lot;
a damaged ``.ebi`` payload does not fail the load: the affected
index (or partition child) is rebuilt from the base data and marked
``degraded`` so the planner quarantines it until
:meth:`Database.fsck` re-audits it.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from contextlib import ExitStack
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
    cast,
)

from repro.encoding.mapping import MappingTable
from repro.errors import (
    CorruptIndexError,
    IndexBuildError,
    InvalidArgumentError,
    SchemaError,
)
from repro.index import serialization
from repro.index.base import Index
from repro.index.bitsliced import BitSlicedIndex
from repro.index.btree import BPlusTreeIndex
from repro.index.compressed import CompressedBitmapIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.index.paged import PagedEncodedBitmapIndex
from repro.index.simple_bitmap import SimpleBitmapIndex
from repro.faults.crash import crash_point
from repro.index.verify import FsckReport, verify_index
from repro.index.verify import repair as repair_index
from repro.obs.metrics import MetricsRegistry
from repro.query.executor import Executor, QueryResult
from repro.query.options import (
    QueryOptions,
    kernel_override,
    resolve_options,
)
from repro.query.predicates import Predicate
from repro.query.snapshot import pinned_rows, published_rows
from repro.serving.result_cache import (
    CacheKey,
    ResultCache,
    cache_key,
)
from repro.storage.wal import FileWriteAheadLog, WalRecord
from repro.shard.executor import ParallelExecutor
from repro.shard.index import PartitionedIndex
from repro.shard.partition import Partition, PartitionedTable
from repro.shard.reorder import reorder_partitioned, reorder_table
from repro.shard.residency import ResidencyManager
from repro.table.catalog import Catalog
from repro.table.table import Table

#: Index kinds :meth:`Database.create_index` knows how to build (and,
#: for kinds without a payload format, rebuild from base data on load).
INDEX_KINDS: Dict[str, Callable[..., Index]] = {
    "encoded": EncodedBitmapIndex,
    "simple": SimpleBitmapIndex,
    "paged": PagedEncodedBitmapIndex,
    "btree": BPlusTreeIndex,
    "bitsliced": BitSlicedIndex,
    "compressed": CompressedBitmapIndex,
}

#: Kinds whose indexes persist as checksummed ``.ebi`` payloads.
_PAYLOAD_KINDS = (EncodedBitmapIndex, CompressedBitmapIndex)

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1
WAL_NAME = "wal.log"

AnyTable = Union[Table, PartitionedTable]


class Database:
    """Facade over catalog, indexes, executors and persistence.

    Parameters
    ----------
    registry:
        Optional metrics sink for every query run through the facade;
        defaults to the calling thread's current registry per query.
    memory_budget_bytes:
        Out-of-core residency budget (``docs/out_of_core.md``): the
        combined dense plane bytes partitioned tables may keep in RAM.
        When set, each partitioned table gets a
        :class:`~repro.shard.residency.ResidencyManager` that spills
        cold partitions' plane snapshots to CRC-headered plane files
        (LRU by last-query epoch) and faults them back in on demand —
        queries stay bit-identical, plane words page from disk.
        ``None`` (the default) keeps everything resident.  Persisted
        in the manifest by :meth:`save`.
    """

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        memory_budget_bytes: Optional[int] = None,
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes < 0:
            raise InvalidArgumentError(
                f"memory_budget_bytes must be >= 0, got "
                f"{memory_budget_bytes}"
            )
        self.catalog = Catalog()  # ebi: shared-readonly
        self.registry = registry  # ebi: shared-readonly
        self.memory_budget_bytes = memory_budget_bytes  # ebi: shared-readonly
        #: Guards the lazily built per-table executor map — ``query``
        #: is part of the facade's thread-safe surface.
        self._lock = threading.Lock()
        self._partitioned: Dict[str, PartitionedTable] = {}
        self._executors: Dict[str, ParallelExecutor] = {}
        #: One entry per ``create_index`` call: table, column, kind.
        self._index_specs: List[Dict[str, str]] = []
        #: Last applied row reorder per table: ordering, sort columns
        #: and the per-partition permutations (saved in the manifest).
        self._reorders: Dict[str, Dict[str, Any]] = {}
        #: Serialises WAL logging with the mutation it covers, so the
        #: log order matches the apply order exactly.
        self._ingest_lock = threading.Lock()
        #: Durable home, set by :meth:`save` / :meth:`recover`.  While
        #: attached, every ingest call is WAL-logged (and fsynced)
        #: before it is applied — the ack implies durability.
        self._directory: Optional[str] = None
        self._wal: Optional[FileWriteAheadLog] = None
        #: Monotonic manifest generation; bumped by every save.
        self._generation = 0
        #: Per-table data epoch: bumped on *entry and exit* of every
        #: mutation path (append/update/delete/compact/reorder and
        #: index DDL), so a query overlapping a mutation can never
        #: observe the same epoch before and after executing — the
        #: store-side double-check in :meth:`query` then refuses the
        #: fill and the result cache stays coherent.
        self._epochs: Dict[str, int] = {}
        #: Result cache keyed on canonicalised retrieval expressions
        #: (:mod:`repro.serving.result_cache`); consulted only when a
        #: query opts in via ``QueryOptions(use_cache=True)``.
        self.result_cache = ResultCache()  # ebi: shared-readonly
        #: Lazily-built per-table residency managers (only when a
        #: memory budget is configured and the table is partitioned).
        self._residency: Dict[str, ResidencyManager] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_catalog(
        cls,
        catalog: Catalog,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Database":
        """Wrap an already-populated catalog (CLI scenarios, tests)."""
        db = cls(registry=registry)
        db.catalog = catalog
        for index in catalog.all_indexes():
            db._index_specs.append(
                {
                    "table": index.table.name,
                    "column": getattr(index, "column_name", ""),
                    "kind": getattr(index, "kind", "encoded"),
                }
            )
        return db

    def create_table(
        self,
        name: str,
        columns: Union[Mapping[str, Sequence[Any]], Sequence[str]],
        *,
        partitions: Optional[int] = None,
    ) -> AnyTable:
        """Create a table from column data or a bare schema.

        ``columns`` is either a mapping of column name to values
        (the table is populated) or a sequence of column names (an
        empty table).  ``partitions=N`` makes it a
        :class:`~repro.shard.partition.PartitionedTable` with
        word-aligned row-range partitions.
        """
        if isinstance(columns, Mapping):
            data: Mapping[str, Sequence[Any]] = columns
        else:
            data = {column: [] for column in columns}
        if not data:
            raise SchemaError("a table needs at least one column")
        table: AnyTable
        if partitions is not None:
            table = PartitionedTable.from_columns(
                name, data, partitions=partitions
            )
            # Register with the catalog *before* recording the
            # partitioned-table entry: registration is the step that
            # rejects duplicate names, and recording first would leave
            # ``_partitioned`` (and through it ``table()`` and the
            # executor map) pointing at an unregistered table when it
            # raises — the stale-facade bug the lifecycle regression
            # test pins down.
            self.catalog.register_table(cast(Table, table))
            self._partitioned[name] = table
        else:
            table = Table.from_columns(name, dict(data))
            self.catalog.register_table(table)
        self._bump_epoch(name)
        return table

    def table(self, name: str) -> AnyTable:
        """The table registered under ``name`` (raises if absent)."""
        if name in self._partitioned:
            return self._partitioned[name]
        return self.catalog.table(name)

    def tables(self) -> List[str]:
        return sorted(table.name for table in self.catalog.tables())

    def is_partitioned(self, name: str) -> bool:
        return name in self._partitioned

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_index(
        self,
        table_name: str,
        column_name: str,
        *,
        kind: str = "encoded",
        encoding: Optional[MappingTable] = None,
        factory: Optional[Callable[[Table, str], Index]] = None,
        **options: Any,
    ) -> Index:
        """Build and register an index on one column.

        ``kind`` selects the index class (see :data:`INDEX_KINDS`);
        for partitioned tables one child of that kind is built per
        partition behind a
        :class:`~repro.shard.index.PartitionedIndex`.  ``factory``
        overrides the per-partition constructor entirely.
        """
        if kind not in INDEX_KINDS:
            raise InvalidArgumentError(
                f"unknown index kind {kind!r}; expected one of "
                f"{sorted(INDEX_KINDS)}"
            )
        table = self.table(table_name)
        self._bump_epoch(table_name)
        index: Index
        if isinstance(table, PartitionedTable):
            child_factory = factory or self._child_factory(
                kind, encoding, options
            )
            index = PartitionedIndex(
                table, column_name, factory=child_factory
            )
            self.catalog.register_index(index, attach=False)
        else:
            if encoding is not None:
                options["encoding"] = encoding
            index = INDEX_KINDS[kind](table, column_name, **options)
            self.catalog.register_index(index)
        self._index_specs.append(
            {"table": table_name, "column": column_name, "kind": kind}
        )
        if isinstance(index, PartitionedIndex):
            # A residency manager built before this index existed must
            # track the new children too.
            with self._lock:
                manager = self._residency.get(table_name)
            if manager is not None:
                for i, child in enumerate(index.children):
                    manager.register(i, child)
        self._bump_epoch(table_name)
        return index

    @staticmethod
    def _child_factory(
        kind: str,
        encoding: Optional[MappingTable],
        options: Dict[str, Any],
    ) -> Callable[[Table, str], Index]:
        build = INDEX_KINDS[kind]
        kwargs = dict(options)
        if encoding is not None:
            kwargs["encoding"] = encoding

        def factory(table: Table, column_name: str) -> Index:
            return build(table, column_name, **kwargs)

        return factory

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(  # ebi: worker-entry
        self,
        table_name: str,
        predicate: Predicate,
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> QueryResult:
        """Plan and run one selection.

        Everything per-call travels in
        :class:`~repro.query.options.QueryOptions` (the old bare
        ``workers=`` / ``trace=`` keywords are deprecated shims):
        worker count and backend for partitioned tables (which return
        a :class:`~repro.shard.executor.PartitionedQueryResult`),
        kernel override, snapshot pin, timeout, tenant stamp — and
        ``use_cache=True``, which serves repeat retrievals from
        :attr:`result_cache` bit-identically (rows *and* ``c_e``) to
        uncached execution.  Traced or snapshot-pinned queries bypass
        the cache.
        """
        opts = resolve_options(options, legacy, where="query")
        start = time.perf_counter()
        key: Optional[CacheKey] = None
        epoch = 0
        if (
            opts.use_cache
            and not opts.trace
            and opts.snapshot_rows is None
        ):
            epoch = self._epoch(table_name)
            key = cache_key(
                self.catalog,
                table_name,
                predicate,
                epoch=epoch,
                published=published_rows(self.table(table_name)),
            )
            if key is not None:
                hit = self.result_cache.lookup(key)
                if hit is not None:
                    hit.tenant = opts.tenant
                    hit.wall_seconds = time.perf_counter() - start
                    return hit
        result = self._query_uncached(table_name, predicate, opts)
        if (
            key is not None
            and not result.degraded
            and self._epoch(table_name) == epoch
        ):
            # The double-check refuses stale fills: any mutation that
            # overlapped this execution moved the epoch (mutators bump
            # on entry *and* exit), so a result computed over a
            # half-mutated universe can never land under a live key.
            self.result_cache.store(key, result)
        result.tenant = opts.tenant
        result.wall_seconds = time.perf_counter() - start
        return result

    def _query_uncached(
        self,
        table_name: str,
        predicate: Predicate,
        opts: QueryOptions,
    ) -> QueryResult:
        if table_name in self._partitioned:
            return self._executor(table_name).execute(predicate, opts)
        executor = Executor(self.catalog, registry=self.registry)
        table = self.catalog.table(table_name)
        with ExitStack() as stack:
            stack.enter_context(kernel_override(opts.use_kernels))
            if opts.snapshot_rows is not None:
                stack.enter_context(
                    pinned_rows(table, rows=opts.snapshot_rows)
                )
            return executor.select(table, predicate, trace=opts.trace)

    def query_many(  # ebi: worker-entry
        self,
        table_name: str,
        predicates: Sequence[Predicate],
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> List[QueryResult]:
        """Run a batch of selections, sharing leaf-vector reads.

        The whole batch is planned up front; every query in it
        shares one leaf-vector cache, so two queries selecting on
        the same leaf predicate pay its index read once (for
        partitioned tables this happens per partition, inside
        :meth:`~repro.shard.executor.ParallelExecutor.execute_many`).
        Per-call configuration travels in ``options`` exactly as for
        :meth:`query`; the batch never consults the result cache —
        its own leaf sharing is the batch-shaped equivalent.
        """
        opts = resolve_options(options, legacy, where="query_many")
        predicates = list(predicates)
        if table_name in self._partitioned:
            return list(
                self._executor(table_name).execute_many(
                    predicates, opts
                )
            )
        executor = Executor(self.catalog, registry=self.registry)
        table = self.catalog.table(table_name)
        # Pin the published-row watermark for the whole batch so a
        # concurrent ingester cannot produce torn results (queries
        # early in the batch seeing fewer rows than later ones); a
        # caller-supplied ``snapshot_rows`` pins tighter.
        with ExitStack() as stack:
            stack.enter_context(kernel_override(opts.use_kernels))
            stack.enter_context(
                pinned_rows(table, rows=opts.snapshot_rows)
            )
            plans = executor.planner.plan_many(table, predicates)
            leaf_cache: Dict[Predicate, Any] = {}
            return [
                executor.execute(
                    plan, trace=opts.trace, leaf_cache=leaf_cache
                )
                for plan in plans
            ]

    # ------------------------------------------------------------------
    # ingest (WAL-logged when a durable home is attached)
    # ------------------------------------------------------------------
    def append(self, table_name: str, row: Any) -> int:
        """Append one row; the ack implies WAL durability.

        See :meth:`append_rows` for the logging protocol.
        """
        return self.append_rows(table_name, [row])[0]

    def append_rows(
        self, table_name: str, rows: Sequence[Any]
    ) -> List[int]:
        """Append a batch of rows, WAL-first.

        The record (normalised row dicts plus the base row count) is
        fsynced to the WAL *before* the batch is applied, so once this
        returns the rows survive any crash — :meth:`recover` replays
        them.  Replay is idempotent: the base row count lets it skip
        batches the manifest already contains.
        """
        table = self.table(table_name)
        normalised = [self._normalise_row(table, row) for row in rows]
        if not normalised:
            return []
        with self._ingest_lock:
            self._bump_epoch(table_name)
            crash_point("database.ingest.pre-log")
            if self._wal is not None:
                # WAL-before-apply is the durability invariant: the
                # fsync *must* sit inside the ingest lock so the log
                # order matches the apply order.  The no-I/O-under-
                # lock rule is suppressed here deliberately.
                self._wal.append(  # ebilint: disable=EBI303
                    WalRecord(
                        "append",
                        {
                            "table": table_name,
                            "base": len(table),
                            "rows": normalised,
                        },
                    )
                )
            crash_point("database.ingest.logged")
            row_ids = table.append_rows(normalised)  # ebilint: disable=EBI303
            crash_point("database.ingest.applied")
            self._bump_epoch(table_name)
        return row_ids

    def update(
        self, table_name: str, row_id: int, column: str, value: Any
    ) -> None:
        """Overwrite one attribute, WAL-first (idempotent on replay)."""
        table = self.table(table_name)
        with self._ingest_lock:
            self._bump_epoch(table_name)
            crash_point("database.ingest.pre-log")
            if self._wal is not None:
                # Log-before-apply, fsync under the ingest lock — see
                # append_rows for why the I/O rule is suppressed.
                self._wal.append(  # ebilint: disable=EBI303
                    WalRecord(
                        "update",
                        {
                            "table": table_name,
                            "row": row_id,
                            "column": column,
                            "value": value,
                        },
                    )
                )
            crash_point("database.ingest.logged")
            table.update(row_id, column, value)  # ebilint: disable=EBI303
            crash_point("database.ingest.applied")
            self._bump_epoch(table_name)

    def delete(self, table_name: str, row_id: int) -> None:
        """Soft-delete one row, WAL-first (idempotent on replay)."""
        table = self.table(table_name)
        with self._ingest_lock:
            self._bump_epoch(table_name)
            crash_point("database.ingest.pre-log")
            if self._wal is not None:
                # Log-before-apply, fsync under the ingest lock — see
                # append_rows for why the I/O rule is suppressed.
                self._wal.append(  # ebilint: disable=EBI303
                    WalRecord(
                        "delete", {"table": table_name, "row": row_id}
                    )
                )
            crash_point("database.ingest.logged")
            table.delete(row_id)  # ebilint: disable=EBI303
            crash_point("database.ingest.applied")
            self._bump_epoch(table_name)

    def compact(self) -> int:
        """Fold every encoded index's delta tier into packed planes.

        Returns the number of indexes that actually compacted.  Also
        runs implicitly when a delta crosses its size threshold.
        """
        # Epochs bump around the whole pass (entry and exit, like
        # every mutation path) so a concurrent cached query can never
        # fill against a half-compacted index set.
        tables = sorted(
            {index.table.name for index in self.catalog.all_indexes()}
        )
        for name in tables:
            self._bump_epoch(name)
        compacted = 0
        for _, index in self._encoded_indexes():
            if index.compact():
                compacted += 1
        for name in tables:
            self._bump_epoch(name)
        return compacted

    def reorder(
        self,
        table_name: str,
        columns: Optional[Sequence[str]] = None,
        *,
        ordering: str = "lex",
    ) -> List[List[int]]:
        """Physically reorder a table's rows for run compression.

        Applies a :mod:`repro.shard.reorder` pass (``"lex"``,
        ``"gray"`` or ``"hist"``; ``"unordered"`` is the identity)
        per partition — partition boundaries are preserved — and
        rebuilds every attached index under the table's write lock.
        Returns the per-partition permutations (one entry for a plain
        table), which are also recorded for the manifest so a saved
        database remembers how its rows map back to arrival order.

        When a durable home is attached, the reorder commits a new
        manifest generation immediately: a physical rewrite cannot be
        replayed from the WAL (its row ids predate the permutation),
        so durability comes from the save itself.
        """
        table = self.table(table_name)
        with self._ingest_lock:
            self._bump_epoch(table_name)
            if isinstance(table, PartitionedTable):
                permutations = reorder_partitioned(
                    table, columns, ordering
                )
            else:
                permutations = [reorder_table(table, columns, ordering)]
            self._reorders[table_name] = {
                "ordering": ordering,
                "columns": (
                    list(columns)
                    if columns is not None
                    else list(table.column_names)
                ),
                "permutations": permutations,
            }
            if self._directory is not None:
                # Commit the new generation before releasing the
                # ingest lock: a WAL-logged append interleaved between
                # the physical rewrite and the manifest save could not
                # be replayed (its row ids would target the old
                # order), so the save must be atomic with the reorder.
                self.save(self._directory)  # ebilint: disable=EBI303
            self._bump_epoch(table_name)
        return permutations

    def reorder_metadata(
        self, table_name: str
    ) -> Optional[Dict[str, Any]]:
        """The last applied reorder for a table (or ``None``):
        ordering, sort columns, per-partition permutations."""
        info = self._reorders.get(table_name)
        return None if info is None else dict(info)

    @staticmethod
    def _normalise_row(table: AnyTable, row: Any) -> Dict[str, Any]:
        if isinstance(row, Mapping):
            return dict(row)
        values = list(row)
        names = table.column_names
        if len(values) != len(names):
            raise InvalidArgumentError(
                f"row has {len(values)} values, expected {len(names)}"
            )
        return dict(zip(names, values))

    def explain(
        self,
        table_name: str,
        predicate: Predicate,
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> str:
        """EXPLAIN without reading any vectors.

        Partitioned tables render one plan per partition with row
        spans; plain tables render the classic single plan.  Accepts
        the same ``options`` object as :meth:`query` (so call sites
        can reuse one), though planning only consults the kernel
        override.
        """
        opts = resolve_options(options, legacy, where="explain")
        with kernel_override(opts.use_kernels):
            if table_name in self._partitioned:
                return self._executor(table_name).explain(predicate)
            executor = Executor(self.catalog, registry=self.registry)
            plan = executor.planner.plan(
                self.catalog.table(table_name), predicate
            )
            return plan.explain()

    def _executor(self, table_name: str) -> ParallelExecutor:
        with self._lock:
            executor = self._executors.get(table_name)
        if executor is not None:
            return executor
        # Build outside the lock (executor construction spins up a
        # worker pool); first-one-in wins on concurrent misses.
        built = ParallelExecutor(
            self._partitioned[table_name],
            registry=self.registry,
            residency=self._residency_for(table_name),
        )
        with self._lock:
            executor = self._executors.setdefault(table_name, built)
        if executor is not built:
            # Lost the race: release the just-built executor's backend
            # resources instead of leaking a process pool.
            built.close()
        return executor

    # ------------------------------------------------------------------
    # out-of-core residency (docs/out_of_core.md)
    # ------------------------------------------------------------------
    def _residency_for(
        self, table_name: str
    ) -> Optional[ResidencyManager]:
        """The table's residency manager (built on first use).

        ``None`` unless a memory budget is configured and the table is
        partitioned.  Plane files live under the durable home's
        ``residency/`` subdirectory when one is attached, else in a
        throwaway temp directory.
        """
        if self.memory_budget_bytes is None:
            return None
        if table_name not in self._partitioned:
            return None
        with self._lock:
            manager = self._residency.get(table_name)
        if manager is not None:
            return manager
        if self._directory is not None:
            directory = os.path.join(
                self._directory, "residency", table_name
            )
        else:
            directory = tempfile.mkdtemp(
                prefix=f"ebi-residency-{table_name}-"
            )
        built = ResidencyManager(
            directory, memory_budget_bytes=self.memory_budget_bytes
        )
        with self._lock:
            manager = self._residency.setdefault(table_name, built)
        if manager is built:
            for index in self.catalog.all_indexes():
                if (
                    isinstance(index, PartitionedIndex)
                    and index.table.name == table_name
                ):
                    for i, child in enumerate(index.children):
                        manager.register(i, child)
        return manager

    def residency_report(
        self, table_name: str
    ) -> Optional[Dict[str, int]]:
        """Residency counters for one table (see
        :meth:`repro.shard.residency.ResidencyManager.report`), or
        ``None`` when the table has no manager."""
        manager = self._residency_for(table_name)
        return None if manager is None else manager.report()

    # ------------------------------------------------------------------
    # epochs and lifecycle
    # ------------------------------------------------------------------
    def _epoch(self, table_name: str) -> int:
        with self._lock:
            return self._epochs.get(table_name, 0)

    def _bump_epoch(self, table_name: str) -> None:
        with self._lock:
            self._epochs[table_name] = (
                self._epochs.get(table_name, 0) + 1
            )

    def epoch(self, table_name: str) -> int:
        """The table's current data epoch (monotonic; moves on every
        mutation path).  Part of the result-cache key; exposed so the
        serving tier and tests can assert on invalidation."""
        return self._epoch(table_name)

    def close(self) -> None:
        """Release executor backends (worker-process pools, spill
        directories), residency plane files, the result cache and the
        WAL.  Idempotent — a second ``close()`` is a no-op, including
        via ``with``-statement exit after an explicit close.  The
        database object itself remains queryable: executors and
        residency managers are rebuilt lazily if used again."""
        with self._lock:
            executors = list(self._executors.values())
            self._executors.clear()
            managers = list(self._residency.values())
            self._residency.clear()
        for executor in executors:
            executor.close()
        for manager in managers:
            manager.close()
        # ResultCache mutates under its own internal lock; the
        # shared-readonly tag covers the binding, not the contents.
        self.result_cache.clear()  # ebilint: disable=EBI301
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def fsck(self, *, repair: bool = False) -> Dict[str, FsckReport]:
        """Audit every encoded-bitmap index (partition children too).

        Each audited index's ``degraded`` flag is updated from the
        verdict — a failing index is quarantined from planning, a
        clean re-audit lifts an earlier quarantine.  With
        ``repair=True``, damaged vectors are rebuilt from the base
        column and the index re-audited.
        """
        reports: Dict[str, FsckReport] = {}
        for label, index in self._encoded_indexes():
            report = verify_index(index, mark=True)
            if repair and not report.ok:
                repair_index(index)
                report = verify_index(index, mark=True)
            reports[label] = report
        return reports

    def _encoded_indexes(self) -> List[Any]:
        found: List[Any] = []
        for index in self.catalog.all_indexes():
            if isinstance(index, PartitionedIndex):
                for i, child in enumerate(index.children):
                    if isinstance(child, EncodedBitmapIndex):
                        found.append(
                            (
                                f"{index.table.name}."
                                f"{index.column_name}.p{i}",
                                child,
                            )
                        )
            elif isinstance(index, EncodedBitmapIndex):
                found.append(
                    (f"{index.table.name}.{index.column_name}", index)
                )
        return found

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Write the database to a directory, crash-consistently.

        ``manifest.json`` carries the table data and index specs;
        every encoded-bitmap index adds one checksummed ``.ebi``
        payload (per partition child for partitioned tables) that
        :meth:`load` verifies and :meth:`fsck` can audit offline.

        Durability protocol (see docs/robustness.md): payloads first,
        then the manifest through a fsynced temp file and an atomic
        rename — the rename is the commit point.  Only after the
        commit is the WAL reset (to a single checkpoint carrying the
        new generation) and stale payloads deleted, so a crash at any
        step leaves either the old generation or the new one, never a
        mix.
        """
        os.makedirs(directory, exist_ok=True)
        generation = self._generation + 1
        manifest: Dict[str, Any] = {
            "version": MANIFEST_VERSION,
            "generation": generation,
            "tables": [],
            "indexes": list(self._index_specs),
        }
        if self.memory_budget_bytes is not None:
            manifest["memory_budget_bytes"] = self.memory_budget_bytes
        for table in self.catalog.tables():
            name = table.name
            entry: Dict[str, Any] = {
                "name": name,
                "partitioned": name in self._partitioned,
                "columns": {
                    column: list(table.column(column).values())
                    for column in table.column_names
                },
                "void_rows": sorted(table.void_rows()),
            }
            if name in self._partitioned:
                ptable = self._partitioned[name]
                bounds = [p.offset for p in ptable.partitions]
                bounds.append(len(ptable))
                entry["bounds"] = bounds
            if name in self._reorders:
                entry["reorder"] = self._reorders[name]
            manifest["tables"].append(entry)
        expected = {MANIFEST_NAME, WAL_NAME}
        for index in self.catalog.all_indexes():
            if isinstance(index, PartitionedIndex):
                for i, child in enumerate(index.children):
                    if isinstance(child, _PAYLOAD_KINDS):
                        payload = self._payload_name(
                            index.table.name, index.column_name, i
                        )
                        expected.add(payload)
                        serialization.save(
                            child, os.path.join(directory, payload)
                        )
            elif isinstance(index, _PAYLOAD_KINDS):
                payload = self._payload_name(
                    index.table.name, index.column_name
                )
                expected.add(payload)
                serialization.save(
                    index, os.path.join(directory, payload)
                )
        crash_point("database.save.payloads")
        path = os.path.join(directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        crash_point("database.save.manifest-temp")
        crash_point("database.save.pre-rename")
        os.replace(tmp, path)
        crash_point("database.save.post-rename")
        # The new generation is durable; everything after this point
        # is cleanup a recovery can redo.
        self._generation = generation
        self._directory = directory
        if self._wal is not None and self._wal.path != os.path.join(
            directory, WAL_NAME
        ):
            self._wal.close()
            self._wal = None
        if self._wal is None:
            self._wal = FileWriteAheadLog(
                os.path.join(directory, WAL_NAME)
            )
        self._wal.reset(generation)
        crash_point("database.save.cleanup")
        for filename in sorted(os.listdir(directory)):
            if filename in expected:
                continue
            if filename.endswith(".ebi") or filename.endswith(".tmp"):
                os.remove(os.path.join(directory, filename))

    @staticmethod
    def _payload_name(
        table: str, column: str, partition: Optional[int] = None
    ) -> str:
        if partition is None:
            return f"{table}.{column}.ebi"
        return f"{table}.{column}.p{partition}.ebi"

    @classmethod
    def load(
        cls,
        directory: str,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Database":
        """Rebuild a database saved with :meth:`save`.

        Partition bounds are restored exactly as saved (appends may
        have grown the last partition past what
        :func:`~repro.shard.partition.partition_bounds` would derive
        today).  A corrupt or missing ``.ebi`` payload never fails
        the load: that index is rebuilt from the base data and
        marked ``degraded`` until the next :meth:`fsck` audit.
        """
        with open(
            os.path.join(directory, MANIFEST_NAME), encoding="utf-8"
        ) as handle:
            manifest = json.load(handle)
        if manifest.get("version") != MANIFEST_VERSION:
            raise CorruptIndexError(
                f"unsupported manifest version "
                f"{manifest.get('version')!r}"
            )
        budget = manifest.get("memory_budget_bytes")
        db = cls(
            registry=registry,
            memory_budget_bytes=(
                int(budget) if budget is not None else None
            ),
        )
        db._generation = int(manifest.get("generation", 0))
        for entry in manifest["tables"]:
            db._load_table(entry)
        for spec in manifest.get("indexes", []):
            db._load_index(directory, spec)
        return db

    @classmethod
    def recover(
        cls,
        directory: str,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> "Database":
        """Load the last durable generation and replay the WAL.

        The recovery contract (exercised by the crash matrix in
        ``tests/test_crash_matrix.py``): every row whose ingest call
        returned before the crash is present afterwards, and replay
        is idempotent — records the manifest already covers are
        skipped by their base row count, re-applied updates write the
        same value, and re-applied deletes are no-ops.  A damaged WAL
        tail is truncated, never replayed.

        The returned database stays attached to ``directory`` (its
        WAL keeps logging), so recovery composes: crash, recover,
        crash again, recover again.
        """
        db = cls.load(directory, registry=registry)
        wal = FileWriteAheadLog(os.path.join(directory, WAL_NAME))
        for record in wal.replay():
            db._replay(record)
        db._directory = directory
        db._wal = wal
        return db

    def _replay(self, record: "WalRecord") -> None:
        if record.kind == "checkpoint":
            return
        data = record.data
        table_name = data["table"]
        if table_name not in {t.name for t in self.catalog.tables()}:
            # The WAL may predate a manifest that dropped the table;
            # nothing durable references these rows any more.
            return
        table = self.table(table_name)
        if record.kind == "append":
            base = int(data["base"])
            rows = data["rows"]
            if len(table) >= base + len(rows):
                # The manifest already contains this batch (crash fell
                # between the manifest rename and the WAL reset).
                return
            # Batches are applied atomically, so the only other
            # possibility is that none of the batch landed.
            table.append_rows(rows[max(0, len(table) - base):])
        elif record.kind == "update":
            row_id = int(data["row"])
            if row_id < len(table) and not table.is_void(row_id):
                table.update(row_id, data["column"], data["value"])
        elif record.kind == "delete":
            row_id = int(data["row"])
            if row_id < len(table) and not table.is_void(row_id):
                table.delete(row_id)

    def _load_table(self, entry: Dict[str, Any]) -> None:
        name = entry["name"]
        columns: Dict[str, List[Any]] = entry["columns"]
        if "reorder" in entry:
            # The saved columns are already permuted; the metadata is
            # provenance (how row ids map back to arrival order).
            self._reorders[name] = entry["reorder"]
        if entry.get("partitioned"):
            bounds: List[int] = entry["bounds"]
            parts: List[Partition] = []
            for i in range(len(bounds) - 1):
                lo, hi = bounds[i], bounds[i + 1]
                chunk = Table.from_columns(
                    f"{name}.p{i}",
                    {
                        column: values[lo:hi]
                        for column, values in columns.items()
                    },
                )
                parts.append(Partition(i, lo, chunk))
            ptable = PartitionedTable(name, parts)
            for row_id in entry.get("void_rows", []):
                ptable.delete(row_id)
            self._partitioned[name] = ptable
            self.catalog.register_table(cast(Table, ptable))
        else:
            table = Table.from_columns(name, columns)
            for row_id in entry.get("void_rows", []):
                table.delete(row_id)
            self.catalog.register_table(table)

    def _load_index(self, directory: str, spec: Dict[str, str]) -> None:
        table_name = spec["table"]
        column_name = spec["column"]
        kind = spec["kind"]
        if kind not in ("encoded", "compressed"):
            # Kinds without a payload format; rebuild from the base
            # data.
            self.create_index(table_name, column_name, kind=kind)
            return
        expected_type = cast(type, INDEX_KINDS[kind])
        table = self.table(table_name)
        if isinstance(table, PartitionedTable):
            damaged: List[int] = []
            counter = iter(range(len(table.partitions)))

            def factory(chunk: Table, column: str) -> Index:
                i = next(counter)
                path = os.path.join(
                    directory,
                    self._payload_name(table_name, column, i),
                )
                child = self._load_payload(
                    path, chunk, column, expected_type
                )
                if child is None:
                    damaged.append(i)
                    return expected_type(chunk, column)
                return child

            index: Index = PartitionedIndex(
                table, column_name, factory=factory
            )
            for i in damaged:
                cast(PartitionedIndex, index).child(i).degraded = True
            self.catalog.register_index(index, attach=False)
        else:
            path = os.path.join(
                directory, self._payload_name(table_name, column_name)
            )
            loaded = self._load_payload(
                path, table, column_name, expected_type
            )
            if loaded is None:
                loaded = expected_type(table, column_name)
                loaded.degraded = True
            self.catalog.register_index(loaded)
        self._index_specs.append(dict(spec))

    @staticmethod
    def _load_payload(
        path: str,
        table: Table,
        column_name: str,
        expected_type: type = EncodedBitmapIndex,
    ) -> Optional[Index]:
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
            index = serialization.loads(payload, table)
        except (OSError, IndexBuildError):
            return None
        if index.column_name != column_name:
            return None
        if type(index) is not expected_type:
            return None
        return index

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Database(tables={self.tables()}, "
            f"indexes={len(self._index_specs)})"
        )
