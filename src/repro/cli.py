"""Command-line interface: regenerate the paper's figures as text.

Usage::

    python -m repro.cli fig9 --cardinality 50
    python -m repro.cli fig10 --max-cardinality 1024
    python -m repro.cli worst-case
    python -m repro.cli crossover
    python -m repro.cli tpcd
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _print_rows(headers, rows) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    print("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        print(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )


def cmd_fig9(args: argparse.Namespace) -> int:
    from repro.analysis.figures import crossover_point, figure9_series

    m = args.cardinality
    series = figure9_series(m)
    step = max(1, m // args.points)
    shown = [row for row in series if (row.delta - 1) % step == 0]
    if shown[-1].delta != m:
        shown.append(series[-1])
    print(f"Figure 9 for |A| = {m} "
          f"(encoded wins for delta >= {crossover_point(m)}):")
    _print_rows(
        ["delta", "c_s", "c_e_best", "c_e_worst"],
        [(r.delta, r.c_s, r.c_e_best, r.c_e_worst) for r in shown],
    )
    return 0


def cmd_fig10(args: argparse.Namespace) -> int:
    from repro.analysis.figures import figure10_series

    cardinalities = []
    m = 2
    while m <= args.max_cardinality:
        cardinalities.append(m)
        m *= 2
    series = figure10_series(cardinalities)
    print("Figure 10: bit vectors required")
    _print_rows(
        ["m", "simple", "encoded"],
        [(r.m, r.simple_vectors, r.encoded_vectors) for r in series],
    )
    return 0


def cmd_worst_case(args: argparse.Namespace) -> int:
    from repro.analysis.savings import worst_case_summary

    print("Section 3.2 worst-case analysis:")
    rows = []
    for m in args.cardinality or (50, 1000):
        summary = worst_case_summary(m)
        rows.append(
            (
                summary.m,
                summary.k,
                f"{summary.area_ratio:.3f}",
                f"{summary.average_saving:.1%}",
                summary.best_delta,
                f"{summary.best_saving:.1%}",
            )
        )
    _print_rows(
        ["|A|", "k", "area ratio", "avg saving", "peak delta",
         "peak saving"],
        rows,
    )
    return 0


def cmd_crossover(args: argparse.Namespace) -> int:
    from repro.analysis.cost_models import (
        btree_bytes,
        btree_space_crossover,
        simple_bitmap_bytes,
    )

    crossover = btree_space_crossover(
        degree=args.degree, page_size=args.page_size
    )
    print(
        f"simple bitmaps beat B-trees on space when m < "
        f"{crossover:.1f}  (p = {args.page_size}, M = {args.degree})"
    )
    n = 1_000_000
    rows = []
    for m in (8, 32, 64, int(crossover), 128, 512):
        rows.append(
            (
                m,
                f"{simple_bitmap_bytes(n, max(2, m)):.0f}",
                f"{btree_bytes(n, args.degree, args.page_size):.0f}",
            )
        )
    _print_rows(["m", "bitmap bytes (n=1e6)", "btree bytes"], rows)
    return 0


def cmd_tpcd(args: argparse.Namespace) -> int:
    from repro.workload.tpcd import TPCD_QUERY_CLASSES, range_query_share

    ranges, total = range_query_share()
    print(f"TPC-D query classes with range search: {ranges}/{total}")
    _print_rows(
        ["class", "range?", "column"],
        [
            (qc.name, "yes" if qc.involves_range else "no", qc.column)
            for qc in TPCD_QUERY_CLASSES
        ],
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import run_all_checks

    results = run_all_checks()
    rows = []
    for result in results:
        rows.append(
            (
                "PASS" if result.passed else "FAIL",
                result.claim,
                result.paper_value,
                result.our_value,
                result.source,
            )
        )
    _print_rows(
        ["status", "claim", "paper", "ours", "where"], rows
    )
    failed = sum(1 for result in results if not result.passed)
    print(
        f"\n{len(results) - failed}/{len(results)} paper claims "
        "reproduced"
    )
    return 1 if failed else 0


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.index import serialization
    from repro.index.verify import fsck_header, verify_payload

    failed = 0
    for path in args.paths:
        try:
            with open(path, "rb") as handle:
                payload = handle.read()
        except OSError as exc:
            print(f"FAIL  {path}  cannot read: {exc}")
            failed += 1
            continue
        report = verify_payload(payload, path=path)
        print(report.render())
        if not report.ok:
            failed += 1
        elif args.verbose:
            parsed = serialization.parse(payload)
            for line in fsck_header(parsed.header):
                print("      " + line)
    total = len(args.paths)
    print(f"\n{total - failed}/{total} index file(s) passed fsck")
    return 1 if failed else 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.database import Database
    from repro.obs.demo import SCENARIOS, model_comparison
    from repro.query.options import QueryOptions
    from repro.query.planner import Planner

    scenario = SCENARIOS[args.scenario]()
    db = Database.from_catalog(scenario.catalog)
    print(f"scenario: {scenario.name} — {scenario.description}")
    print()
    print(db.explain(scenario.table.name, scenario.predicate))
    if args.no_run:
        return 0
    print()
    result = db.query(
        scenario.table.name, scenario.predicate, QueryOptions(trace=True)
    )
    # The cost-model comparison wants the Plan object itself — an
    # internals concern the facade deliberately doesn't expose.
    plan = Planner(db.catalog).plan(scenario.table, scenario.predicate)
    assert result.trace is not None
    print(result.trace.render())
    print()
    rows = model_comparison(plan, result.trace)
    if rows:
        print("measured vs paper cost model (vectors read by the "
              "reduced expression):")
        _print_rows(
            ["column", "m", "delta", "k", "c_e_best", "c_e_worst",
             "measured", "status"],
            [
                (r["column"], r["m"], r["delta"], r["k"], r["c_e_best"],
                 r["c_e_worst"], r["measured"], r["status"])
                for r in rows
            ],
        )
        if any(r["status"] != "OK" for r in rows):
            return 1
    print(f"\nrows selected: {result.count()}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.runner import run_suite

    workers = None
    if args.workers:
        try:
            workers = [int(part) for part in args.workers.split(",")]
        except ValueError:
            print(f"invalid --workers value: {args.workers!r}")
            return 2
        if any(count < 1 for count in workers):
            print("--workers counts must be >= 1")
            return 2
    from repro.errors import InvalidArgumentError

    only = None
    if args.case:
        only = [
            token.strip()
            for token in args.case.split(",")
            if token.strip()
        ]
    try:
        report = run_suite(
            quick=args.quick,
            tolerance=args.tolerance,
            out_dir=args.out,
            suite=args.suite,
            workers=workers,
            only=only,
            rows=args.rows,
        )
    except InvalidArgumentError as exc:
        print(str(exc))
        return 2
    print(report.render())
    return 0 if report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.database import Database
    from repro.errors import (
        QuotaExceededError,
        RequestTimeoutError,
        ServerOverloadedError,
    )
    from repro.query.options import QueryOptions
    from repro.serving.server import Server
    from repro.serving.workload import ReadOp, SyntheticWorkload

    if args.directory is not None:
        db = Database.recover(args.directory)
        names = db.tables()
        if args.table is not None:
            if args.table not in names:
                print(
                    f"no table {args.table!r} in {args.directory} "
                    f"(found: {', '.join(names) or 'none'})"
                )
                return 2
            table_name = args.table
        elif len(names) == 1:
            table_name = names[0]
        else:
            print(
                "directory holds several tables; pick one with "
                f"--table (found: {', '.join(names)})"
            )
            return 2
        table = db.table(table_name)
        column = args.column
        if column is None:
            for name in table.column_names:
                if db.catalog.indexes_on(table_name, name):
                    column = name
                    break
        if column is None:
            print(f"no indexed column on {table_name}; use --column")
            return 2
        values = sorted(
            (
                value
                for value in table.column(column).distinct_values()
                if value is not None
            ),
            key=repr,
        )
        if not values:
            print(f"{table_name}.{column} holds no values to query")
            return 2
        # A recovered directory is served read-only: the driver never
        # appends to (or re-logs the WAL of) a database it was handed.
        workload = SyntheticWorkload(
            seed=args.seed,
            tenants=args.tenants,
            values=values,
            read_fraction=1.0,
            table=table_name,
            column=column,
        )
    else:
        db = Database()
        workload = SyntheticWorkload(
            seed=args.seed,
            tenants=args.tenants,
            rows=args.rows,
            read_fraction=args.read_fraction,
            partitions=args.partitions,
        )
        workload.build(db)

    server = Server(
        database=db,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        default_timeout=args.timeout,
        use_cache=not args.no_cache,
    )
    pending = []
    rejected = 0
    started = time.perf_counter()
    try:
        for op in workload.operations(args.requests):
            if isinstance(op, ReadOp):
                try:
                    pending.append(
                        server.submit(
                            workload.TABLE,
                            op.predicate,
                            options=QueryOptions(
                                tenant=op.tenant, backend=args.backend
                            ),
                        )
                    )
                except (
                    QuotaExceededError,
                    RequestTimeoutError,
                    ServerOverloadedError,
                ):
                    rejected += 1
            else:
                db.append(workload.TABLE, op.row)
        for request in pending:
            try:
                request.result(timeout=args.timeout)
            except Exception:  # noqa: BLE001 - counted in stats below
                pass
        elapsed = time.perf_counter() - started
        stats = server.stats()
    finally:
        server.close()
        db.close()

    reads = len(pending) + rejected
    writes = args.requests - reads
    qps = stats.completed / elapsed if elapsed > 0 else 0.0
    cache = db.result_cache
    print(
        f"served {workload.TABLE!r} on {workload.COLUMN!r} "
        f"(policy={args.policy}, workers={args.workers}, "
        f"backend={args.backend}, "
        f"cache={'off' if args.no_cache else 'on'}):"
    )
    print(
        f"  reads {reads} (admission-rejected {rejected}), "
        f"writes {writes}"
    )
    print(
        f"  completed {stats.completed}, failed {stats.failed} "
        f"(shed {stats.shed}, timed out {stats.timed_out})"
    )
    print(f"  wall {elapsed:.2f} s — {qps:.1f} q/s")
    print(
        "  latency "
        + ", ".join(
            f"{name} {value * 1000:.2f} ms"
            for name, value in stats.latency_percentiles.items()
        )
    )
    print(
        f"  result cache: {cache.hits} hits, {cache.misses} misses, "
        f"{cache.fills()} fills"
    )
    if stats.tenants:
        print()
        _print_rows(
            ["tenant", "completed", "failed", "p50 ms", "p99 ms"],
            [
                (
                    row.tenant,
                    row.completed,
                    row.failed,
                    f"{row.latency_percentiles.get('p50', 0.0) * 1000:.2f}",
                    f"{row.latency_percentiles.get('p99', 0.0) * 1000:.2f}",
                )
                for row in stats.tenants.values()
            ],
        )
    return 1 if stats.failed else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    forwarded: List[str] = list(args.paths)
    if args.no_baseline:
        forwarded.append("--no-baseline")
    return lint_main(forwarded or None)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate figures from 'Encoded Bitmap Indexing for "
            "Data Warehouses' (Wu & Buchmann, ICDE 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig9 = sub.add_parser("fig9", help="Figure 9 cost curves")
    p_fig9.add_argument("--cardinality", type=int, default=50)
    p_fig9.add_argument("--points", type=int, default=20)
    p_fig9.set_defaults(func=cmd_fig9)

    p_fig10 = sub.add_parser("fig10", help="Figure 10 space curves")
    p_fig10.add_argument("--max-cardinality", type=int, default=1024)
    p_fig10.set_defaults(func=cmd_fig10)

    p_wc = sub.add_parser("worst-case", help="Section 3.2 numbers")
    p_wc.add_argument(
        "--cardinality", type=int, nargs="*", default=None
    )
    p_wc.set_defaults(func=cmd_worst_case)

    p_cross = sub.add_parser(
        "crossover", help="Section 2.1 bitmap/B-tree space break-even"
    )
    p_cross.add_argument("--degree", type=int, default=512)
    p_cross.add_argument("--page-size", type=int, default=4096)
    p_cross.set_defaults(func=cmd_crossover)

    p_tpcd = sub.add_parser("tpcd", help="TPC-D range-share table")
    p_tpcd.set_defaults(func=cmd_tpcd)

    p_validate = sub.add_parser(
        "validate",
        help="check every number printed in the paper against this "
        "implementation",
    )
    p_validate.set_defaults(func=cmd_validate)

    p_fsck = sub.add_parser(
        "fsck",
        help="verify saved encoded-bitmap index files: checksums, "
        "structure, and paper invariants",
    )
    p_fsck.add_argument("paths", nargs="+")
    p_fsck.add_argument("--verbose", action="store_true")
    p_fsck.set_defaults(func=cmd_fsck)

    p_explain = sub.add_parser(
        "explain",
        help="EXPLAIN + traced execution of a canned query, compared "
        "against the paper's cost model",
    )
    p_explain.add_argument(
        "scenario",
        nargs="?",
        default="table1",
        choices=("table1", "demo3"),
        help="table1: the paper's Figure 1 worked example; "
        "demo3: a 3-predicate IN-list query",
    )
    p_explain.add_argument(
        "--no-run",
        action="store_true",
        help="print EXPLAIN only (reads no bitmap vectors)",
    )
    p_explain.set_defaults(func=cmd_explain)

    p_bench = sub.add_parser(
        "bench",
        help="run the repro benchmark harness and write BENCH_*.json "
        "at the repo root (see docs/benchmarks.md)",
    )
    p_bench.add_argument(
        "--quick",
        action="store_true",
        help="run the small smoke suite (writes BENCH_smoke.json)",
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative divergence tolerated between measured and "
        "model-predicted costs (default 0.25)",
    )
    p_bench.add_argument(
        "--out",
        default=None,
        help="directory for BENCH_*.json (default: repo root)",
    )
    p_bench.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker-thread counts for the "
        "partition-parallel case (default: 1,4)",
    )
    p_bench.add_argument(
        "--case",
        default=None,
        help="run only the cases whose name contains one of these "
        "comma-separated substrings (e.g. --case kernel_eval)",
    )
    p_bench.add_argument(
        "--suite",
        default=None,
        help="override the suite name used in BENCH_<suite>.json "
        "(default: smoke for --quick, full otherwise)",
    )
    p_bench.add_argument(
        "--rows",
        type=int,
        default=None,
        help="override the row count of every row-parameterised case "
        "(e.g. --rows 1000000; pair with --suite for sweeps)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="stand up the serving tier (bounded queue, quotas, "
        "result cache) over a database and drive a seeded zipf "
        "multi-tenant workload through it (see docs/serving.md)",
    )
    p_serve.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="a directory written by Database.save, served read-only; "
        "omit to build an in-memory synthetic table",
    )
    p_serve.add_argument(
        "--table",
        default=None,
        help="table to serve from a recovered directory (default: "
        "the only table)",
    )
    p_serve.add_argument(
        "--column",
        default=None,
        help="indexed column the synthetic predicates select on "
        "(default: the first indexed column)",
    )
    p_serve.add_argument(
        "--requests",
        type=int,
        default=400,
        help="operations to drive through the server (default 400)",
    )
    p_serve.add_argument(
        "--rows",
        type=int,
        default=4096,
        help="synthetic table size when no directory is given",
    )
    p_serve.add_argument("--tenants", type=int, default=4)
    p_serve.add_argument(
        "--partitions",
        type=int,
        default=4,
        help="partition count of the synthetic table (default 4)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--read-fraction",
        type=float,
        default=0.9,
        help="share of operations that are reads; the rest append "
        "(synthetic mode only — recovered directories are read-only)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="server worker threads (default 2)",
    )
    p_serve.add_argument("--queue-capacity", type=int, default=64)
    p_serve.add_argument(
        "--policy",
        choices=("reject", "block", "shed"),
        default="block",
        help="admission policy when the queue is full (default block)",
    )
    p_serve.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="partition-executor backend for served queries",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="end-to-end request deadline in seconds (default 30)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="serve strictly uncached answers",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="run ebilint, the paper-invariant static-analysis pass "
        "(full options: python -m repro.lint --help)",
    )
    p_lint.add_argument("paths", nargs="*", default=[])
    p_lint.add_argument("--no-baseline", action="store_true")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
