"""A small thread-safe LRU cache shared by the query-stack caches.

One implementation backs the three cache layers added for compiled
retrieval (see ``docs/performance.md``): the logical-reduction cache
in :mod:`repro.boolean.reduction`, the compiled-kernel caches of
:class:`~repro.index.encoded_bitmap.EncodedBitmapIndex`, and the
module-level compile cache in :mod:`repro.kernels.compiler`.

Hits, misses and evictions are published both as plain attributes
(``hits`` / ``misses`` / ``evictions`` — cheap to assert on in tests)
and, when a ``metrics_prefix`` is given, as counters on the calling
thread's current :class:`~repro.obs.metrics.MetricsRegistry` — which
is what lets the partition-parallel executor attribute cache traffic
to individual queries (each worker runs under a private registry).

Example::

    >>> cache: LRUCache[str, int] = LRUCache(maxsize=2)
    >>> cache.put("a", 1)
    >>> cache.put("b", 2)
    >>> cache.get("a")
    1
    >>> cache.put("c", 3)        # evicts "b", the least recently used
    >>> cache.get("b") is None
    True
    >>> sorted(cache.keys())
    ['a', 'c']
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Generic, List, Optional, TypeVar

from repro.errors import InvalidArgumentError

K = TypeVar("K")
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept; inserting beyond it evicts the
        least recently *used* (read or written) entry.
    metrics_prefix:
        When set, ``get`` publishes ``<prefix>.hits`` /
        ``<prefix>.misses`` and eviction publishes
        ``<prefix>.evictions`` to the calling thread's current metrics
        registry.  Resolved per call — never cached — so per-query
        scoped registries see the traffic they caused.
    """

    __slots__ = (
        "_data",
        "_lock",
        "_maxsize",
        "_metrics_prefix",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(
        self, maxsize: int, *, metrics_prefix: Optional[str] = None
    ) -> None:
        if maxsize < 1:
            raise InvalidArgumentError(
                f"cache maxsize must be >= 1, got {maxsize}"
            )
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._lock = threading.Lock()
        self._maxsize = maxsize
        self._metrics_prefix = metrics_prefix
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def maxsize(self) -> int:
        return self._maxsize

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._data

    def keys(self) -> List[K]:
        """Current keys, least recently used first."""
        with self._lock:
            return list(self._data.keys())

    # ------------------------------------------------------------------
    def get(self, key: K) -> Optional[V]:
        """Return the cached value (marking it recently used), or None."""
        hit = False
        value: Optional[V] = None
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
            else:
                self._data.move_to_end(key)
                self.hits += 1
                hit = True
        # Registry publishing resolves thread state and runs callback
        # code; keep it outside the critical section (EBI303).
        self._count("hits" if hit else "misses")
        return value if hit else None

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting the LRU one if full."""
        evicted = False
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self.evictions += 1
                evicted = True
        if evicted:
            self._count("evictions")

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Fetch ``key``, building and caching it on a miss.

        The factory runs *outside* the lock: two threads missing the
        same key may both build it (benign — the value is a pure
        function of the key for every cache in this codebase), but a
        slow factory never blocks unrelated readers.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        value = factory()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (hit/miss totals are kept)."""
        with self._lock:
            self._data.clear()

    # ------------------------------------------------------------------
    def _count(self, event: str) -> None:
        if self._metrics_prefix is None:
            return
        from repro.obs.metrics import get_registry

        get_registry().counter(f"{self._metrics_prefix}.{event}").inc()

    def __repr__(self) -> str:
        return (
            f"LRUCache(size={len(self)}/{self._maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
