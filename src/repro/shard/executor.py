"""Partition-parallel query execution with deterministic merging.

Each partition is one unit of work: a worker thread plans and
evaluates the predicate against the partition's own catalog (so the
reduced retrieval expression uses the partition-local mapping), under
a *private* metrics registry installed via
:func:`repro.obs.metrics.use_registry` — concurrent partitions never
touch a shared counter.  The numpy word-packed AND/OR/popcount and
whole-column comparisons release the GIL, which is where thread
parallelism pays on multi-core hosts.

Merging is deterministic by construction, not by scheduling luck:
partition results are combined in partition-id order regardless of
completion order — result vectors by word-aligned concatenation,
costs by summation, per-partition metric deltas by
:func:`repro.obs.metrics.merge_metric_deltas`.  Running with one
worker or eight therefore produces bit-identical rows, counts, and
aggregated metrics (the property ``tests/test_shard.py`` pins down).

``execute_many`` is the batch API: all of a batch's predicates are
evaluated partition by partition, sharing one leaf-vector cache and
one column-array cache per partition, so queries selecting on the
same leaf predicate pay its vector read once.

Compiled-kernel and reduction reuse across partitions is free: the
reduction cache (:mod:`repro.boolean.reduction`) and the compile cache
(:mod:`repro.kernels.compiler`) are process-wide and thread-safe, so
when partitions are built over one *shared* mapping (identical codes),
the first partition to see a predicate shape pays Quine–McCluskey and
kernel compilation once and the other N-1 partitions hit the caches —
watch ``boolean.reduction_cache.hits`` and
``kernels.compile_cache.hits`` in the merged metrics.  Partition-local
mappings (the :class:`~repro.shard.index.PartitionedIndex` default)
produce different codes per partition and therefore different cache
keys; supply a shared-mapping factory to unlock the sharing.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.bitmap.bitvector import BitVector
from repro.errors import InvalidArgumentError, QueryTimeoutError
from repro.index.base import LookupCost
from repro.obs.metrics import (
    MetricsRegistry,
    MetricValue,
    get_registry,
    merge_metric_deltas,
    use_registry,
)
from repro.obs.trace import QueryTrace, StageTiming
from repro.query.executor import Executor, QueryResult
from repro.query.optimizer import shared_leaf_counts
from repro.query.options import (
    QueryOptions,
    kernel_override,
    resolve_options,
)
from repro.query.predicates import Predicate
from repro.query.snapshot import bounded_rows, pinned_rows
from repro.shard.partition import Partition, PartitionedTable
from repro.shard.scan import ColumnArrayCache, try_vector_scan

if TYPE_CHECKING:
    from repro.shard.process import ProcessPoolStrategy
    from repro.shard.residency import ResidencyManager

#: Default worker-thread count (matches the default partition count).
DEFAULT_WORKERS = 4


@dataclass(slots=True)
class PartitionSlice:
    """What one partition contributed to one merged query."""

    partition_id: int
    rows: int
    cost: LookupCost
    metrics: Dict[str, MetricValue]
    wall_seconds: float
    used_scan: bool
    degraded: bool
    #: True when the fallback scan ran as whole-column numpy
    #: comparisons instead of the per-row Python loop.
    vector_scan: bool


@dataclass
class PartitionedQueryResult(QueryResult):
    """A merged query result plus its per-partition breakdown."""

    partitions: List[PartitionSlice] = field(default_factory=list)
    workers: int = 1


@dataclass(slots=True)
class _PartitionRecord:
    """Raw per-(partition, query) outcome before merging."""

    result: QueryResult
    wall_seconds: float
    vector_scan: bool


class ParallelExecutor:
    """Evaluates predicates over a :class:`PartitionedTable` in parallel.

    Parameters
    ----------
    table:
        The partitioned table; each partition's catalog must hold the
        indexes to use (see
        :class:`repro.shard.index.PartitionedIndex`, whose children
        self-register there).
    workers:
        Keyword-only default worker-thread count; per-call ``workers=``
        overrides it.  One worker executes partitions inline on the
        calling thread — the baseline the determinism tests compare
        against.
    registry:
        Keyword-only metrics registry receiving the merged counters;
        defaults to the calling thread's current registry at each call.
    residency:
        Keyword-only optional
        :class:`~repro.shard.residency.ResidencyManager`.  When set,
        every partition is acquired through it before evaluation
        (fault-in + LRU budget enforcement) and the streaming path
        prefetches the *next* partition's plane file while the current
        one evaluates — the out-of-core pipeline of
        ``docs/out_of_core.md``.
    """

    def __init__(
        self,
        table: PartitionedTable,
        *,
        workers: int = DEFAULT_WORKERS,
        registry: Optional[MetricsRegistry] = None,
        residency: Optional["ResidencyManager"] = None,
    ) -> None:
        if workers < 1:
            raise InvalidArgumentError(
                f"worker count must be >= 1, got {workers}"
            )
        self.table = table  # ebi: shared-readonly
        self.workers = workers  # ebi: shared-readonly
        self.registry = registry  # ebi: shared-readonly
        self.residency = residency  # ebi: shared-readonly
        self._process_lock = threading.Lock()
        self._process: Optional["ProcessPoolStrategy"] = None

    def _registry(self) -> MetricsRegistry:
        return self.registry if self.registry is not None else get_registry()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def execute(
        self,
        predicate: Predicate,
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> PartitionedQueryResult:
        """Evaluate one predicate across every partition and merge.

        Configuration travels in ``options``; the pre-``QueryOptions``
        bare keywords (``workers=``, ``trace=``) still work behind a
        :class:`DeprecationWarning` shim.
        """
        opts = resolve_options(options, legacy, where="execute")
        return self.execute_many([predicate], opts)[0]

    def execute_many(
        self,
        predicates: Sequence[Predicate],
        options: Optional[QueryOptions] = None,
        **legacy: Any,
    ) -> List[PartitionedQueryResult]:
        """Evaluate a batch of predicates, sharing reads per partition.

        Every worker task covers *all* predicates for one partition,
        sharing a leaf-vector cache and a column-array cache across
        the batch; results merge per query in partition-id order.

        ``options`` selects the backend (``thread`` / ``process``),
        worker count, per-query kernel override, snapshot pin and
        timeout; the old bare ``workers=`` / ``trace=`` keywords are
        deprecated shims.  Traced queries always run on the thread
        backend — a trace is built from in-process objects that a
        worker process cannot send back whole.
        """
        opts = resolve_options(options, legacy, where="execute_many")
        predicates = list(predicates)
        if not predicates:
            return []
        nworkers = self.workers if opts.workers is None else opts.workers
        trace = opts.trace
        deadline: Optional[float] = None
        if opts.timeout_seconds is not None:
            deadline = time.monotonic() + opts.timeout_seconds
        registry = self._registry()
        wall = time.perf_counter()
        cpu = time.process_time()

        partitions = self.table.partitions
        if opts.backend == "process" and not trace:
            outcomes = self._process_strategy().run_batch(
                partitions,
                predicates,
                snapshot_rows=opts.snapshot_rows,
                use_kernels=opts.use_kernels,
                deadline=deadline,
                registry=registry,
            )
        elif nworkers == 1:
            # Streaming pipeline: while partition i evaluates on this
            # thread, a helper warms partition i+1's spilled plane
            # file (double buffering — fault-in I/O overlaps kernel
            # time instead of serialising with it).  A no-op without a
            # residency manager or when everything is resident.
            outcomes = []
            prefetcher: Optional[threading.Thread] = None
            for position, partition in enumerate(partitions):
                self._check_deadline(deadline, opts)
                prefetcher = (
                    self._start_prefetch(partitions, position + 1)
                    if opts.prefetch is not False
                    else None
                )
                outcomes.append(
                    self._run_partition(
                        partition,
                        predicates,
                        trace,
                        snapshot_rows=opts.snapshot_rows,
                        use_kernels=opts.use_kernels,
                    )
                )
                if prefetcher is not None:
                    prefetcher.join()
        else:
            outcomes = self._run_threaded(
                partitions, predicates, trace, nworkers, opts, deadline
            )

        results = self._merge(
            predicates, partitions, outcomes, nworkers, trace
        )
        elapsed = time.perf_counter() - wall
        for result in results:
            result.wall_seconds = elapsed
            result.tenant = opts.tenant
        if trace:
            timing = StageTiming(
                name="execute",
                wall_seconds=elapsed,
                cpu_seconds=time.process_time() - cpu,
            )
            for result in results:
                if result.trace is not None:
                    result.trace.stages.append(timing)

        self._publish(registry, predicates, outcomes)
        return results

    def _run_threaded(
        self,
        partitions: Sequence[Partition],
        predicates: Sequence[Predicate],
        trace: bool,
        nworkers: int,
        opts: QueryOptions,
        deadline: Optional[float],
    ) -> List[Tuple[List["_PartitionRecord"], Dict[str, MetricValue]]]:
        """Fan partitions out to a thread pool, honouring the deadline.

        On timeout the pool is shut down without waiting (in-flight
        partitions are abandoned, queued ones cancelled) and
        :class:`~repro.errors.QueryTimeoutError` is raised — no partial
        result escapes.
        """
        pool = ThreadPoolExecutor(max_workers=nworkers)
        try:
            futures: List[Future[Any]] = [
                pool.submit(
                    self._run_partition,
                    partition,
                    predicates,
                    trace,
                    snapshot_rows=opts.snapshot_rows,
                    use_kernels=opts.use_kernels,
                )
                for partition in partitions
            ]
            outcomes = []
            for future in futures:
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                try:
                    outcomes.append(future.result(timeout=remaining))
                except FuturesTimeout:
                    raise QueryTimeoutError(
                        f"query exceeded its "
                        f"{opts.timeout_seconds}s deadline while "
                        f"awaiting partition results",
                        timeout_seconds=opts.timeout_seconds or 0.0,
                    ) from None
            return outcomes
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _check_deadline(
        deadline: Optional[float], opts: QueryOptions
    ) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise QueryTimeoutError(
                f"query exceeded its {opts.timeout_seconds}s deadline",
                timeout_seconds=opts.timeout_seconds or 0.0,
            )

    def _process_strategy(self) -> "ProcessPoolStrategy":
        """The lazily-built, reused process-pool backend."""
        from repro.shard.process import ProcessPoolStrategy

        with self._process_lock:
            if self._process is None:
                self._process = ProcessPoolStrategy()
            return self._process

    def close(self) -> None:
        """Release backend resources (the worker-process pool and its
        spill directory).  Idempotent; the executor stays usable — the
        next process-backend query simply rebuilds the pool."""
        with self._process_lock:
            process, self._process = self._process, None
        if process is not None:
            process.close()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def explain(self, predicate: Predicate) -> str:
        """Partition-aware EXPLAIN: one plan per partition, no reads."""
        lines = [
            "PARTITIONED QUERY PLAN",
            f"  table: {self.table.name} "
            f"({len(self.table.partitions)} partitions, "
            f"workers={self.workers})",
            f"  predicate: {predicate}",
        ]
        for partition in self.table.partitions:
            executor = Executor(partition.catalog)
            plan = executor.planner.plan(partition.table, predicate)
            span = (
                f"rows {partition.offset}.."
                f"{partition.offset + len(partition.table)}"
            )
            lines.append(f"  partition {partition.id} [{span}):")
            lines.extend(
                "    " + line for line in plan.explain().splitlines()
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # per-partition work (runs on a worker thread)
    # ------------------------------------------------------------------
    def _start_prefetch(
        self,
        partitions: Sequence[Partition],
        position: int,
    ) -> Optional[threading.Thread]:
        """Warm the plane file of ``partitions[position]`` off-thread.

        Returns the helper thread (joined after the current partition
        finishes evaluating) or ``None`` when there is nothing to
        prefetch — no residency manager, or no next partition.
        """
        manager = self.residency
        if manager is None or position >= len(partitions):
            return None
        partition_id = partitions[position].id
        thread = threading.Thread(
            target=manager.prefetch,
            args=(partition_id,),
            name=f"ebi-prefetch-{partition_id}",
            daemon=True,
        )
        thread.start()
        return thread

    def _run_partition(
        self,
        partition: Partition,
        predicates: Sequence[Predicate],
        trace: bool,
        *,
        snapshot_rows: Optional[int] = None,
        use_kernels: Optional[bool] = None,
    ) -> Tuple[List[_PartitionRecord], Dict[str, MetricValue]]:
        # Out-of-core hook: fault the partition in (page-accounted)
        # and let the LRU budget spill colder ones before evaluating.
        manager = self.residency
        if manager is not None:
            manager.acquire(partition.id)
        return run_partition_batch(
            partition,
            predicates,
            trace,
            snapshot_rows=snapshot_rows,
            use_kernels=use_kernels,
        )

    @staticmethod
    def _vector_scan(
        partition: Partition,
        predicate: Predicate,
        arrays: ColumnArrayCache,
        registry: MetricsRegistry,
    ) -> Optional[QueryResult]:
        """Fallback scan as whole-column numpy work, when provably
        equivalent to the row-by-row reference scan."""
        # Counter order mirrors Executor.execute: queries before the
        # scope so per-query metric dicts match the classic path.
        vector = try_vector_scan(partition.table, predicate, arrays)
        if vector is None:
            return None
        limit = bounded_rows(partition.table)
        if len(vector) != limit:
            vector.resize(limit)
        registry.counter("query.queries").inc()
        scope = registry.scoped()
        rows_checked = partition.table.live_count()
        registry.counter("query.scans").inc()
        registry.counter("query.scan_rows_checked").inc(rows_checked)
        registry.counter("shard.vector_scan_rows").inc(rows_checked)
        result = QueryResult(
            vector=vector,
            cost=LookupCost(rows_checked=rows_checked),
            used_scan=True,
        )
        result.metrics = scope.finish()
        return result

    # ------------------------------------------------------------------
    # deterministic merging (partition-id order, always)
    # ------------------------------------------------------------------
    def _merge(
        self,
        predicates: Sequence[Predicate],
        partitions: Sequence[Partition],
        outcomes: Sequence[
            Tuple[List[_PartitionRecord], Dict[str, MetricValue]]
        ],
        nworkers: int,
        trace: bool,
    ) -> List[PartitionedQueryResult]:
        results: List[PartitionedQueryResult] = []
        for q, predicate in enumerate(predicates):
            slices: List[PartitionSlice] = []
            vectors: List[BitVector] = []
            cost = LookupCost()
            for partition, (records, _totals) in zip(
                partitions, outcomes
            ):
                record = records[q]
                part_result = record.result
                vectors.append(part_result.vector)
                cost.vectors_accessed += (
                    part_result.cost.vectors_accessed
                )
                cost.node_accesses += part_result.cost.node_accesses
                cost.rows_checked += part_result.cost.rows_checked
                slices.append(
                    PartitionSlice(
                        partition_id=partition.id,
                        rows=part_result.vector.count(),
                        cost=part_result.cost,
                        metrics=part_result.metrics,
                        wall_seconds=record.wall_seconds,
                        used_scan=part_result.used_scan,
                        degraded=part_result.degraded,
                        vector_scan=record.vector_scan,
                    )
                )
            merged = PartitionedQueryResult(
                vector=BitVector.concat(vectors),
                cost=cost,
                used_scan=any(s.used_scan for s in slices),
                degraded=any(s.degraded for s in slices),
                metrics=merge_metric_deltas(s.metrics for s in slices),
                partitions=slices,
                workers=nworkers,
            )
            if trace:
                merged.trace = self._merge_trace(
                    predicate, partitions, outcomes, q, merged
                )
            results.append(merged)
        return results

    def _merge_trace(
        self,
        predicate: Predicate,
        partitions: Sequence[Partition],
        outcomes: Sequence[
            Tuple[List[_PartitionRecord], Dict[str, MetricValue]]
        ],
        q: int,
        merged: PartitionedQueryResult,
    ) -> QueryTrace:
        plan_text = (
            f"PARTITIONED ({len(partitions)} partitions, "
            f"workers={merged.workers}) WHERE {predicate}"
        )
        trace = QueryTrace(plan_text=plan_text)
        trace.used_scan = merged.used_scan
        trace.degraded = merged.degraded
        trace.metrics = merged.metrics
        for partition, (records, _totals) in zip(partitions, outcomes):
            part_trace = records[q].result.trace
            if part_trace is None:
                continue
            for access in part_trace.accesses:
                access.partition = partition.id
                trace.accesses.append(access)
        return trace

    # ------------------------------------------------------------------
    def _publish(
        self,
        registry: MetricsRegistry,
        predicates: Sequence[Predicate],
        outcomes: Sequence[
            Tuple[List[_PartitionRecord], Dict[str, MetricValue]]
        ],
    ) -> None:
        """Fold the partition-private registries into the caller's.

        Integer (counter) totals are replayed as increments in
        partition order; float-valued entries (gauges, histogram
        extremes) are skipped — last-write/extreme semantics don't
        aggregate meaningfully across partitions.
        """
        totals = merge_metric_deltas(
            snapshot for _records, snapshot in outcomes
        )
        for name, value in totals.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            if name.endswith((".min", ".max")):
                continue
            registry.counter(name).inc(value)
        registry.counter("shard.batches").inc()
        registry.counter("shard.queries").inc(len(predicates))
        shared = sum(
            1
            for count in shared_leaf_counts(predicates).values()
            if count > 1
        )
        if shared:
            registry.counter("shard.shared_leaves").inc(shared)


def run_partition_batch(
    partition: Partition,
    predicates: Sequence[Predicate],
    trace: bool = False,
    *,
    snapshot_rows: Optional[int] = None,
    use_kernels: Optional[bool] = None,
) -> Tuple[List[_PartitionRecord], Dict[str, MetricValue]]:
    """Evaluate a predicate batch against one partition.

    The unit of work both backends share: the thread backend calls it
    on a worker thread, the process backend
    (:mod:`repro.shard.process`) calls it inside a worker process
    against a deserialised partition replica.  Runs under a *private*
    metrics registry (returned as the snapshot half of the result) and
    a pinned row watermark; ``snapshot_rows`` is a caller-supplied pin
    in *global* row ids that clamps the partition to its slice of the
    first ``snapshot_rows`` rows, and ``use_kernels`` thread-locally
    overrides the compiled-kernel path for the whole batch.
    """
    registry = MetricsRegistry()
    records: List[_PartitionRecord] = []
    # Pin the partition's published-row watermark for the whole batch:
    # every predicate sees the same row universe even while a
    # concurrent ingester appends to the tail partition
    # (repro.query.snapshot).
    bound: Optional[int] = None
    if snapshot_rows is not None:
        published = partition.table.published_rows()
        bound = min(max(snapshot_rows - partition.offset, 0), published)
    with use_registry(registry), kernel_override(
        use_kernels
    ), pinned_rows(partition.table, rows=bound):
        executor = Executor(partition.catalog)
        arrays = ColumnArrayCache(partition.table)
        leaf_cache: Dict[Predicate, BitVector] = {}
        for predicate in predicates:
            start = time.perf_counter()
            plan = executor.planner.plan(partition.table, predicate)
            result: Optional[QueryResult] = None
            vector_scan = False
            if plan.fallback_scan and not plan.degraded_columns:
                result = ParallelExecutor._vector_scan(
                    partition, predicate, arrays, registry
                )
                vector_scan = result is not None
            if result is None:
                result = executor.execute(
                    plan, trace=trace, leaf_cache=leaf_cache
                )
            records.append(
                _PartitionRecord(
                    result=result,
                    wall_seconds=time.perf_counter() - start,
                    vector_scan=vector_scan,
                )
            )
    return records, registry.snapshot()
