"""Build-time row reordering for word-aligned bitmap compression.

The paper's encodings fix *codes*; this module fixes *row order*.
Sorting the fact table clusters equal codes, so the bit planes of an
encoded bitmap index collapse into long fills under word-aligned run
compression (:mod:`repro.bitmap.wah`) — the effect measured by Lemire
& Kaser (*Sorting improves word-aligned bitmap indexes*) and the
histogram-aware follow-up (see ``PAPERS.md`` and
``docs/compression.md``).

Three orderings plus the identity are provided:

``lex``
    Sort rows lexicographically by the selected columns' value codes
    (codes follow the natural value order).
``gray``
    Sort rows along the reflected Gray path of the concatenated code
    bits: adjacent distinct codes differ in one bit, so each bit plane
    flips at most once per code transition — fewer, longer runs than
    ``lex`` on the low-order planes.
``hist``
    Histogram-aware: column priority is ascending cardinality and
    value codes are assigned by descending frequency, so the heaviest
    values form the longest fills.
``unordered``
    The identity permutation (the bench baseline).

A reorder is physical: :func:`reorder_table` computes the permutation
and applies it through :meth:`repro.table.table.Table.apply_permutation`,
which rewrites the columns, remaps the void set and rebuilds every
attached index under the table's write lock — the same atomic
hot-swap discipline as compaction, so lookups before and after see
consistent (row-permuted) results and identical ``c_e``.
:func:`reorder_partitioned` applies the pass per partition, leaving
partition boundaries (word-aligned by construction) untouched; the
per-partition permutations are recorded in the database manifest by
:meth:`repro.database.Database.reorder`.

>>> from repro.table.table import Table
>>> table = Table("T", ["A", "B"])
>>> for a, b in [("y", 1), ("x", 1), ("y", 0), ("x", 0)]:
...     _ = table.append({"A": a, "B": b})
>>> row_permutation(table, ["A", "B"], "lex")
[3, 1, 2, 0]
>>> reorder_table(table, ["A", "B"], "lex")
[3, 1, 2, 0]
>>> [table.row(i)["A"] for i in range(4)]
['x', 'x', 'y', 'y']
>>> gray_table = Table("G", ["V"])
>>> for value in [2, 3, 0, 1]:
...     _ = gray_table.append({"V": value})
>>> row_permutation(gray_table, ["V"], "gray")
[2, 3, 1, 0]
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.encoding.gray import inverse_gray
from repro.errors import InvalidArgumentError
from repro.shard.partition import PartitionedTable
from repro.table.table import Table

#: The supported ordering strategies.
ORDERINGS = ("unordered", "lex", "gray", "hist")


def _order_key(values: Sequence[Any]) -> Callable[[Any], Any]:
    """A total order over a column's non-NULL domain.

    Natural value order when the domain is homogeneous and comparable;
    otherwise a deterministic ``(type name, repr)`` fallback.
    """
    domain = [value for value in set(values) if value is not None]
    try:
        sorted(domain)
    except TypeError:
        return lambda value: (type(value).__name__, repr(value))
    return lambda value: value


def _value_codes(
    table: Table, column_name: str, ordering: str
) -> Dict[Any, int]:
    """Per-value sort codes for one column.

    ``lex``/``gray`` rank values in natural order; ``hist`` ranks them
    by descending frequency (ties broken in natural order) so the most
    frequent value gets code 0 and therefore the longest fills.  NULL
    always sorts last within its frequency class.
    """
    raw = table.column(column_name).values()
    key = _order_key(raw)

    def null_last(value: Any) -> Any:
        return (value is None, None if value is None else key(value))

    if ordering == "hist":
        freq: Dict[Any, int] = {}
        for value in raw:
            freq[value] = freq.get(value, 0) + 1
        ranked = sorted(freq, key=lambda v: (-freq[v],) + null_last(v))
    else:
        ranked = sorted(set(raw), key=null_last)
    return {value: code for code, value in enumerate(ranked)}


def column_priority(
    table: Table,
    columns: Optional[Sequence[str]] = None,
    ordering: str = "lex",
) -> List[str]:
    """The column order the sort key is built in.

    ``lex``/``gray`` respect the caller's order (defaulting to the
    table's column order); ``hist`` re-ranks by ascending cardinality —
    low-cardinality columns first produce the longest outer runs, the
    histogram-aware heuristic's core move.
    """
    names = list(columns) if columns is not None else table.column_names
    for name in names:
        table.column(name)  # raises TableError on unknown columns
    if ordering == "hist":
        return sorted(names, key=lambda n: table.column(n).cardinality())
    return names


def row_permutation(
    table: Table,
    columns: Optional[Sequence[str]] = None,
    ordering: str = "lex",
) -> List[int]:
    """The permutation (new position -> old row id) for ``ordering``.

    Pure computation — nothing is applied.  The sort is stable, so
    rows with equal keys keep their arrival order (appends within one
    value stay clustered and deterministic).
    """
    if ordering not in ORDERINGS:
        raise InvalidArgumentError(
            f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
        )
    nrows = len(table)
    if ordering == "unordered" or nrows == 0:
        return list(range(nrows))
    names = column_priority(table, columns, ordering)
    keys = [0] * nrows
    for name in names:
        codes = _value_codes(table, name, ordering)
        top = max(codes.values()) if codes else 0
        shift = max(1, top.bit_length())
        row_codes = [codes[v] for v in table.column(name).values()]
        for row_id in range(nrows):
            keys[row_id] = (keys[row_id] << shift) | row_codes[row_id]
    if ordering == "gray":
        keys = [inverse_gray(code) for code in keys]
    return sorted(range(nrows), key=keys.__getitem__)


def reorder_table(
    table: Table,
    columns: Optional[Sequence[str]] = None,
    ordering: str = "lex",
) -> List[int]:
    """Compute and physically apply a row reorder; returns the
    permutation (new position -> old row id).

    The identity permutation (always under ``"unordered"``) is a
    no-op: columns and indexes are left untouched.
    """
    order = row_permutation(table, columns, ordering)
    if order != list(range(len(order))):
        table.apply_permutation(order)
    return order


def reorder_partitioned(
    table: PartitionedTable,
    columns: Optional[Sequence[str]] = None,
    ordering: str = "lex",
) -> List[List[int]]:
    """Apply the reorder pass independently to every partition.

    Each partition's rows are permuted *within* the partition, so the
    word-aligned partition boundaries — and every partition-local
    index's row universe — are preserved.  Returns one local
    permutation per partition (new local position -> old local row
    id), the shape stored in the manifest by
    :meth:`repro.database.Database.reorder`.
    """
    return [
        reorder_table(partition.table, columns, ordering)
        for partition in table.partitions
    ]
