"""Partition plane residency: spill, evict and fault-in under a budget.

The out-of-core tier (``docs/out_of_core.md``).  A
:class:`ResidencyManager` tracks the dense plane snapshots of a
partitioned index's children and keeps their combined RAM charge under
a configurable ``memory_budget_bytes``:

* **spill** — a cold partition's packed snapshot is written to a
  CRC-headered plane file (:func:`repro.kernels.mapped.write_plane_file`)
  and swapped for a read-only ``np.memmap`` view
  (:meth:`~repro.index.encoded_bitmap.EncodedBitmapIndex.spill_planes`),
  freeing the dense matrix while queries keep running bit-identically;
* **evict** — spills are chosen LRU by last-query epoch whenever the
  charged resident bytes exceed the budget;
* **fault-in** — touching a spilled partition pages its plane words
  back from disk on demand; when the budget has headroom the snapshot
  is promoted back to the dense tier
  (:meth:`~repro.index.encoded_bitmap.EncodedBitmapIndex.promote_planes`);
* **prefetch** — the streaming executor warms the next partition's
  plane file while the current one evaluates (:meth:`prefetch`),
  overlapping fault-in I/O with kernel time.

A partition may carry several indexed columns; each child index
registers under the same partition id and is tracked (and spilled)
independently, while :meth:`acquire`/:meth:`prefetch` operate on the
whole partition — the unit the executor schedules.

Accounting stays honest through the storage counters: every spill,
fault and prefetch is recorded page-granularly (the paper's
``p = 4K``) on an :class:`~repro.storage.stats.IOStatistics` block, so
``storage.*`` metrics and the Section 3 page-cost model line up with
real file traffic rather than simulated reads.  Eviction drops a
partition's pages from the accounted pool, so an unwarmed acquire of a
mapped partition is a cold fault (physical page reads) every epoch;
warmth is one-shot — a :meth:`prefetch` pays the physical reads up
front and the next acquire consumes it as pool hits.

>>> import tempfile
>>> from repro.index.encoded_bitmap import EncodedBitmapIndex
>>> from repro.table.table import Table
>>> table = Table.from_columns("t", {"v": ["a", "b", "a", "c"] * 64})
>>> index = EncodedBitmapIndex(table, "v")
>>> manager = ResidencyManager(
...     tempfile.mkdtemp(), memory_budget_bytes=1
... )
>>> manager.register(0, index)
>>> manager.acquire(0)          # charge exceeds budget -> spilled
>>> index.planes_mapped
True
>>> manager.acquire(0)          # cold fault: pages re-read on demand
>>> manager.stats.evictions, manager.stats.physical_reads > 0
(1, True)
>>> manager.prefetch(0)         # warm the file ahead of the next epoch
>>> manager.acquire(0)          # ...which turns the fault into pool hits
>>> manager.stats.pool_hits > 0
True
>>> manager.close()
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from threading import RLock
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidArgumentError
from repro.index.base import Index
from repro.kernels import MappedPlaneSet, PlaneSet
from repro.kernels.mapped import PLANE_DATA_OFFSET
from repro.storage.page import PAGE_SIZE_DEFAULT
from repro.storage.stats import IOStatistics

#: Registration key: (partition id, per-partition sequence number).
_Key = Tuple[int, int]


@dataclass
class _Entry:
    """Book-keeping for one registered child index."""

    index: Index
    path: str
    charged: int = 0        # dense bytes currently counted on the budget
    plane_bytes: int = 0    # last known snapshot size (dense layout)
    last_used: int = 0      # query epoch of the most recent acquire
    warm: bool = False      # plane-file pages believed OS-resident
    pinned: bool = False    # unspillable (e.g. compressed format)
    spilling: bool = False  # a thread is writing the plane file now


class ResidencyManager:
    """LRU residency control for partition plane snapshots.

    Parameters
    ----------
    directory:
        Where plane files live; created if missing.  One file per
        registered child index (``p<id>-<n>.ebp``), rewritten on every
        spill.
    memory_budget_bytes:
        Combined dense-snapshot bytes allowed in RAM before LRU
        spilling kicks in.  ``None`` (or 0) disables eviction — the
        manager still tracks residency and serves explicit
        :meth:`spill` calls.
    stats:
        Optional :class:`~repro.storage.stats.IOStatistics` to account
        on; by default a private block parented to the process-wide
        registry (so ``storage.*`` totals include residency traffic).
    page_size:
        Page granularity for the accounting; defaults to the paper's
        ``p = 4K``.
    """

    def __init__(
        self,
        directory: str,
        *,
        memory_budget_bytes: Optional[int] = None,
        stats: Optional[IOStatistics] = None,
        page_size: int = PAGE_SIZE_DEFAULT,
    ) -> None:
        if memory_budget_bytes is not None and memory_budget_bytes < 0:
            raise InvalidArgumentError(
                f"memory_budget_bytes must be >= 0, got {memory_budget_bytes}"
            )
        if page_size <= 0:
            raise InvalidArgumentError(
                f"page_size must be positive, got {page_size}"
            )
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.memory_budget_bytes = memory_budget_bytes or None
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStatistics()
        self._lock = RLock()
        self._entries: "OrderedDict[_Key, _Entry]" = OrderedDict()
        self._epoch = 0
        self._resident = 0
        self._peak = 0
        self.spills = 0
        self.faults = 0
        self.promotions = 0
        self.prefetches = 0
        self._closed = False

    # ------------------------------------------------------------------
    # registration / introspection
    # ------------------------------------------------------------------
    def register(self, partition_id: int, index: Index) -> None:
        """Track ``index`` as a child of partition ``partition_id``.

        May be called several times per partition (one call per
        indexed column).  Only packed-format encoded bitmap indexes
        are spillable; anything else (compressed planes, foreign index
        kinds) is tracked as pinned — charged against the budget but
        never evicted.
        """
        pinned = (
            not hasattr(index, "spill_planes")
            or getattr(index, "plane_format", "packed") != "packed"
        )
        with self._lock:
            seq = sum(
                1 for key in self._entries if key[0] == partition_id
            )
            path = os.path.join(
                self.directory, f"p{partition_id:05d}-{seq}.ebp"
            )
            self._entries[(partition_id, seq)] = _Entry(
                index=index, path=path, pinned=pinned
            )

    @property
    def resident_bytes(self) -> int:
        """Dense plane bytes currently charged against the budget."""
        with self._lock:
            return self._resident

    @property
    def peak_resident_bytes(self) -> int:
        """High-water mark of :attr:`resident_bytes`."""
        with self._lock:
            return self._peak

    def total_plane_bytes(self) -> int:
        """Last known dense-layout bytes across every registration."""
        with self._lock:
            return sum(e.plane_bytes for e in self._entries.values())

    def mapped_count(self) -> int:
        """How many registered child indexes are currently spilled."""
        with self._lock:
            entries = list(self._entries.values())
        return sum(
            1
            for entry in entries
            if getattr(entry.index, "planes_mapped", False)
        )

    # ------------------------------------------------------------------
    # the query-path hooks
    # ------------------------------------------------------------------
    def acquire(self, partition_id: int) -> None:
        """Mark a partition used this query epoch and make it servable.

        Spilled children fault back in (page-granular physical reads
        on a cold map, pool hits when warm) and are promoted to dense
        when the budget has headroom; resident children refresh their
        charge (snapshots grow with ingest).  Finally the LRU loop
        enforces the budget, spilling the coldest children.
        """
        for entry in self._touch(partition_id):
            if getattr(entry.index, "planes_mapped", False):
                self._fault(entry)
            else:
                self._charge_dense(entry)
        self.enforce(exclude=partition_id)

    def prefetch(self, partition_id: int) -> None:
        """Warm a spilled partition's plane files ahead of evaluation.

        Reads the files sequentially (counting physical page reads),
        so the following :meth:`acquire` — typically issued while the
        *previous* partition is still evaluating — finds the pages hot
        and accounts pool hits only.  A no-op for resident partitions.
        """
        with self._lock:
            entries = [
                entry
                for key, entry in self._entries.items()
                if key[0] == partition_id
            ]
        for entry in entries:
            if not getattr(entry.index, "planes_mapped", False):
                continue
            with self._lock:
                if entry.warm:
                    continue
            pages = self._warm_file(entry.path)
            with self._lock:
                entry.warm = True
                self.prefetches += 1
            for _ in range(pages):
                self.stats.record_logical_read()
                self.stats.record_physical_read()

    # ------------------------------------------------------------------
    # spill / enforce
    # ------------------------------------------------------------------
    def spill(self, partition_id: int) -> bool:
        """Spill every dense child of one partition to its plane file.

        Returns ``True`` when at least one snapshot moved; ``False``
        when all children are pinned, already mapped, or a concurrent
        write raced the spill.
        """
        with self._lock:
            entries = [
                entry
                for key, entry in self._entries.items()
                if key[0] == partition_id
            ]
        moved = False
        for entry in entries:
            moved = self._spill_entry(entry) or moved
        return moved

    def spill_all(self) -> int:
        """Spill every spillable child; returns how many moved."""
        with self._lock:
            ids = sorted({key[0] for key in self._entries})
        return sum(1 for pid in ids if self.spill(pid))

    def enforce(self, exclude: Optional[int] = None) -> None:
        """Spill LRU children until resident bytes fit the budget.

        ``exclude`` deprioritises the partition being served right now
        (it is MRU anyway) — but the budget is a hard ceiling, so when
        it holds the only spillable charge left (budget smaller than
        one partition) it spills too and serves from the map.  File
        I/O always runs outside the manager lock (the EBI303
        discipline).
        """
        budget = self.memory_budget_bytes
        if budget is None:
            return
        with self._lock:
            candidates = len(self._entries)
        for _ in range(candidates):
            with self._lock:
                if self._resident <= budget:
                    return
                spillable = [
                    (key, entry)
                    for key, entry in self._entries.items()
                    if entry.charged > 0 and not entry.pinned
                ]
                others = [
                    item for item in spillable if item[0][0] != exclude
                ]
                key_entry = (
                    others[0]
                    if others
                    else (spillable[0] if spillable else None)
                )
            if key_entry is None:
                return
            _key, entry = key_entry
            if not self._spill_entry(entry):
                # Raced a writer (or became unspillable); drop or pin
                # its stale charge rather than spinning on it.  An
                # in-flight spill on another thread is left alone —
                # that thread releases the charge when it finishes.
                with self._lock:
                    if entry.charged > 0 and not entry.spilling:
                        if getattr(entry.index, "planes_mapped", False):
                            self._resident -= entry.charged
                            entry.charged = 0
                        else:
                            entry.pinned = True

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, int]:
        """Flat counters for bench reports and EXPLAIN surfaces."""
        with self._lock:
            return {
                "budget_bytes": self.memory_budget_bytes or 0,
                "resident_bytes": self._resident,
                "peak_resident_bytes": self._peak,
                "total_plane_bytes": sum(
                    e.plane_bytes for e in self._entries.values()
                ),
                "registered": len(self._entries),
                "mapped": sum(
                    1
                    for e in self._entries.values()
                    if getattr(e.index, "planes_mapped", False)
                ),
                "spills": self.spills,
                "faults": self.faults,
                "promotions": self.promotions,
                "prefetches": self.prefetches,
                "page_reads_logical": self.stats.logical_reads,
                "page_reads_physical": self.stats.physical_reads,
                "page_writes": self.stats.writes,
                "pool_hits": self.stats.pool_hits,
                "evictions": self.stats.evictions,
            }

    def close(self) -> None:
        """Remove plane files and stop tracking.  Idempotent.

        Mapped indexes stay readable until their snapshot is next
        rebuilt (on POSIX an unlinked mapping remains valid); callers
        wanting dense state back should promote first
        (:meth:`~repro.index.encoded_bitmap.EncodedBitmapIndex.promote_planes`).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
            self._resident = 0
        for entry in entries:
            try:
                os.unlink(entry.path)
            except OSError:
                pass
        try:
            os.rmdir(self.directory)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _touch(self, partition_id: int) -> List[_Entry]:
        with self._lock:
            keys = [
                key for key in self._entries if key[0] == partition_id
            ]
            if not keys:
                return []
            self._epoch += 1
            entries = []
            for key in keys:
                entry = self._entries[key]
                entry.last_used = self._epoch
                self._entries.move_to_end(key)
                entries.append(entry)
            return entries

    def _spill_entry(self, entry: _Entry) -> bool:
        with self._lock:
            # One writer per entry: a second worker thread enforcing
            # the budget concurrently must not race the plane-file
            # write (enforce() skips the entry and retries instead).
            if entry.pinned or entry.spilling:
                return False
            entry.spilling = True
        try:
            spill = getattr(entry.index, "spill_planes", None)
            if spill is None:
                return False
            file_bytes = spill(entry.path)
        finally:
            with self._lock:
                entry.spilling = False
        if file_bytes is None:
            return False
        payload = max(file_bytes - PLANE_DATA_OFFSET, 0)
        pages = -(-payload // self.page_size)
        for _ in range(pages):
            self.stats.record_write()
        self.stats.record_eviction()
        with self._lock:
            self._resident -= entry.charged
            entry.charged = 0
            entry.plane_bytes = payload
            # Eviction drops the pages from the accounted pool: the
            # next acquire is a cold fault unless a prefetch re-warms
            # the file first.
            entry.warm = False
            self.spills += 1
        return True

    def _charge_dense(self, entry: _Entry) -> None:
        planes = getattr(entry.index, "planes", None)
        if planes is None:
            return
        snapshot = planes()
        if isinstance(snapshot, MappedPlaneSet):
            return  # raced a concurrent spill; nothing to charge
        nbytes = int(snapshot.nbytes())
        with self._lock:
            entry.pinned = entry.pinned or not isinstance(
                snapshot, PlaneSet
            )
            self._resident += nbytes - entry.charged
            entry.charged = nbytes
            entry.plane_bytes = max(entry.plane_bytes, nbytes)
            if self._resident > self._peak:
                self._peak = self._resident

    def _fault(self, entry: _Entry) -> None:
        planes = getattr(entry.index, "planes", None)
        if planes is None:
            return
        snapshot = planes()
        if not isinstance(snapshot, MappedPlaneSet):
            # A writer rebuilt dense planes in the meantime.
            self._charge_dense(entry)
            return
        payload = snapshot.nbytes()
        pages = -(-payload // self.page_size)
        with self._lock:
            # Warmth is one-shot: a prefetch warms the file, the next
            # acquire consumes it as pool hits.  An unwarmed acquire
            # is a cold fault (physical page reads) — the entry stays
            # uncharged, so under budget pressure every later epoch
            # faults again, which is exactly the out-of-core cost the
            # bench accounts.
            warm = entry.warm
            entry.warm = False
            entry.plane_bytes = max(entry.plane_bytes, payload)
            if not warm:
                self.faults += 1
        for _ in range(pages):
            self.stats.record_logical_read()
            if warm:
                self.stats.record_pool_hit()
            else:
                self.stats.record_physical_read()
        budget = self.memory_budget_bytes
        if budget is not None:
            with self._lock:
                headroom = budget - self._resident
            if payload <= headroom:
                promote = getattr(entry.index, "promote_planes", None)
                gained = promote() if promote is not None else None
                if gained:
                    with self._lock:
                        self.promotions += 1
                        self._resident += gained - entry.charged
                        entry.charged = gained
                        if self._resident > self._peak:
                            self._peak = self._resident

    def _warm_file(self, path: str) -> int:
        """Sequentially read ``path``'s payload; returns page count."""
        pages = 0
        try:
            with open(path, "rb") as handle:
                handle.seek(PLANE_DATA_OFFSET)
                while True:
                    chunk = handle.read(1 << 20)
                    if not chunk:
                        break
                    pages += -(-len(chunk) // self.page_size)
        except OSError:
            return 0
        return pages

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ResidencyManager(registered={len(self._entries)}, "
                f"resident={self._resident}, peak={self._peak}, "
                f"budget={self.memory_budget_bytes})"
            )
