"""Vectorized fallback scans over numpy column arrays.

When no index serves a predicate the classic executor walks the table
row by row through ``Predicate.matches`` — microseconds per row.  For
numeric, NULL-free columns the same predicate tree evaluates as a
handful of whole-column numpy comparisons instead, which is what lets
a partition worker chew through millions of rows per second (and,
being word-level numpy work, release the GIL while doing it).

``try_vector_scan`` is strictly conservative: it returns ``None``
whenever it cannot *prove* the numpy evaluation matches the reference
``Predicate.matches`` semantics (non-numeric data, NULLs present,
exotic comparison values), and the caller falls back to the row scan.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.bitmap.bitvector import BitVector
from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    IsNull,
    NotPredicate,
    OrPredicate,
    Predicate,
    Range,
)
from repro.table.table import Table

#: Comparison operands we trust numpy to evaluate with Python
#: semantics.  ``bool`` is a subclass of ``int`` and compares the same
#: way in both worlds, so it rides along.
_NUMERIC = (int, float)


class ColumnArrayCache:
    """Lazily built numpy arrays for one table's columns.

    An entry is ``None`` when the column cannot be represented exactly
    (it has NULLs or non-numeric values); the cache remembers the
    failure so repeated queries don't re-scan the column.  One cache
    is shared across a whole query batch — the "shared vector read"
    of :meth:`repro.shard.executor.ParallelExecutor.execute_many`.
    """

    __slots__ = ("_table", "_arrays")

    def __init__(self, table: Table) -> None:
        self._table = table
        self._arrays: Dict[str, Optional[np.ndarray]] = {}

    def array(self, name: str) -> Optional[np.ndarray]:
        if name not in self._arrays:
            self._arrays[name] = self._build(name)
        return self._arrays[name]

    def _build(self, name: str) -> Optional[np.ndarray]:
        column = self._table.column(name)
        if column.has_nulls():
            return None
        values = column.values()
        if not all(isinstance(value, _NUMERIC) for value in values):
            return None
        array = np.asarray(values)
        if array.dtype == object:
            return None
        return array


def _leaf_mask(
    predicate: Predicate, cache: ColumnArrayCache
) -> Optional[np.ndarray]:
    if isinstance(predicate, Equals):
        array = cache.array(predicate.column)
        if array is None or not isinstance(predicate.value, _NUMERIC):
            return None
        return np.asarray(array == predicate.value)
    if isinstance(predicate, InList):
        array = cache.array(predicate.column)
        if array is None:
            return None
        # None never equals a non-NULL numeric value, so dropping it
        # is exact; any other non-numeric member makes us bail.
        members = [v for v in predicate.values if v is not None]
        if not all(isinstance(v, _NUMERIC) for v in members):
            return None
        if not members:
            return np.zeros(array.shape, dtype=bool)
        return np.isin(array, np.asarray(members))
    if isinstance(predicate, Range):
        array = cache.array(predicate.column)
        if array is None:
            return None
        for bound in (predicate.low, predicate.high):
            if bound is not None and not isinstance(bound, _NUMERIC):
                return None
        mask = np.ones(array.shape, dtype=bool)
        if predicate.low is not None:
            if predicate.low_inclusive:
                mask &= array >= predicate.low
            else:
                mask &= array > predicate.low
        if predicate.high is not None:
            if predicate.high_inclusive:
                mask &= array <= predicate.high
            else:
                mask &= array < predicate.high
        return mask
    if isinstance(predicate, IsNull):
        array = cache.array(predicate.column)
        if array is None:
            return None
        # Arrays only exist for NULL-free columns.
        return np.zeros(array.shape, dtype=bool)
    return None


def _mask(
    predicate: Predicate, cache: ColumnArrayCache
) -> Optional[np.ndarray]:
    if isinstance(predicate, (AndPredicate, OrPredicate)):
        masks: List[np.ndarray] = []
        for operand in predicate.operands:
            mask = _mask(operand, cache)
            if mask is None:
                return None
            masks.append(mask)
        result = masks[0]
        for mask in masks[1:]:
            if isinstance(predicate, AndPredicate):
                result = result & mask
            else:
                result = result | mask
        return result
    if isinstance(predicate, NotPredicate):
        inner = _mask(predicate.operand, cache)
        if inner is None:
            return None
        return ~inner
    return _leaf_mask(predicate, cache)


def try_vector_scan(
    table: Table, predicate: Predicate, cache: ColumnArrayCache
) -> Optional[BitVector]:
    """Evaluate a predicate as whole-column numpy operations.

    Returns the result vector (void rows cleared, exactly as the
    row-by-row scan would produce), or ``None`` when the predicate or
    the data falls outside the provably-equivalent subset.

    >>> from repro.table.table import Table
    >>> table = Table.from_columns("T", {"v": [3, 1, 4, 1, 5]})
    >>> cache = ColumnArrayCache(table)
    >>> try_vector_scan(table, Equals("v", 1), cache).to_bitstring()
    '01010'
    >>> try_vector_scan(table, Equals("v", "x"), cache) is None
    True
    """
    mask = _mask(predicate, cache)
    if mask is None:
        return None
    for row_id in table.void_rows():
        mask[row_id] = False
    return BitVector.from_mask(mask)
