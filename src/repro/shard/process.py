"""Process-pool execution backend for the partition-parallel executor.

Thread workers only escape the GIL inside numpy sections; everything
else — planning, Quine–McCluskey reduction, kernel compilation,
per-row fallback scans — serialises on one interpreter lock.  The
``process`` backend (``QueryOptions(backend="process")``) runs each
partition batch in a *worker process* instead, so the pure-Python
share of the work parallelises too, and a long pipeline of batches
pays interpreter start-up once: the pool is persistent across calls.

The data plane is the existing checksummed serialisation format:

* every index in a partition's catalog ships as its ``.ebi`` payload
  (:func:`repro.index.serialization.dumps` — CRC-framed end to end),
* the table chunk ships as a CRC-framed JSON section (column values up
  to the published-row watermark, void rows, offsets),

spilled to one file per partition under a scratch directory.  Spill
files are content-addressed by a fingerprint of the partition's
mutation counter, watermark and index epochs, so an unchanged
partition is spilled once and re-mapped by workers from their own
process-local cache on every subsequent batch; any mutation changes
the fingerprint and forces a respill.  Workers map partitions
independently and return plain :class:`_PartitionRecord` lists, which
the caller merges deterministically in partition-id order — the same
merge, and therefore bit-identical results, as the thread backend.

The pool uses the ``spawn`` start method unconditionally: the parent
is multi-threaded (servers, ingest threads), and forking a
multi-threaded process inherits locks in whatever state the other
threads left them.

Dispatch deliberately bypasses
:class:`concurrent.futures.ProcessPoolExecutor`: each worker is a
spawned process on the far end of a duplex pipe, and the submitting
thread pickles its chunk, writes it, and reads the reply itself.  The
executor's extra hops — a management thread plus a wakeup pipe on
every submit and every result — cost more than an entire partition
batch for point queries, which is exactly the traffic a serving tier
produces.  With raw pipes the round trip is two syscalls and one
scheduler hop, so the persistent pool undercuts the thread backend's
per-call pool construction instead of merely amortising its own.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import pickle
import struct
import tempfile
import threading
import time
import uuid
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CorruptIndexError,
    InvalidArgumentError,
    QueryTimeoutError,
    WorkerCrashError,
)
from repro.index import serialization
from repro.obs.metrics import MetricsRegistry, MetricValue
from repro.query.predicates import Predicate
from repro.shard.partition import Partition
from repro.table.table import Table

#: Spill-file magic ("Encoded Bitmap Spilled Partition").
MAGIC = b"EBSP"
#: Section frame: u32 payload length, u32 payload CRC32.
_FRAME = struct.Struct("<II")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), _crc(payload)) + payload


class _SpillReader:
    """Sequential reader over CRC-framed sections of a spill file."""

    def __init__(self, data: bytes, path: str) -> None:
        self._data = data
        self._path = path
        self._pos = len(MAGIC)
        if data[: len(MAGIC)] != MAGIC:
            raise CorruptIndexError(
                f"bad spill magic in {path!r}", offset=0, field="magic"
            )

    def next_section(self) -> bytes:
        header_end = self._pos + _FRAME.size
        if header_end > len(self._data):
            raise CorruptIndexError(
                f"truncated spill frame in {self._path!r}",
                offset=self._pos,
                field="frame",
            )
        length, crc = _FRAME.unpack(self._data[self._pos : header_end])
        payload = self._data[header_end : header_end + length]
        if len(payload) != length or _crc(payload) != crc:
            raise CorruptIndexError(
                f"spill section failed its CRC in {self._path!r}",
                offset=self._pos,
                field="section",
            )
        self._pos = header_end + length
        return payload


class _PipeWorker:
    """Parent-side handle for one spawned worker process.

    ``lock`` serialises callers onto the worker's duplex pipe: a
    dispatching thread holds it from send to matching receive, so
    replies can never interleave across requests.
    """

    __slots__ = ("process", "conn", "lock")

    def __init__(self, process: Any, conn: Any) -> None:
        self.process = process  # ebi: shared-readonly
        self.conn = conn  # ebi: shared-readonly
        self.lock = threading.Lock()

    def send(self, message: Tuple[Any, ...]) -> None:
        """Ship one request down the pipe; caller must hold ``lock``."""
        blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        self.conn.send_bytes(blob)

    def receive(self, deadline: Optional[float]) -> Any:
        """Read the matching reply; caller must hold ``lock``."""
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self.conn.poll(remaining):
                raise QueryTimeoutError(
                    "query exceeded its deadline while awaiting "
                    "process-pool partition results",
                )
        kind, payload = pickle.loads(self.conn.recv_bytes())
        if kind == "err":
            raise payload
        return payload

    def stop(self) -> None:
        """Ask the worker to exit, then make sure it did."""
        try:
            self.conn.send_bytes(
                pickle.dumps(("stop", None), protocol=pickle.HIGHEST_PROTOCOL)
            )
        except OSError:
            pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)


class ProcessPoolStrategy:
    """Maps partition batches onto a persistent worker-process pool.

    Parameters (keyword-only)
    -------------------------
    max_workers:
        Worker-process count; defaults to the machine's CPU count.
    spill_dir:
        Directory for partition spill files; defaults to a private
        temporary directory removed by :meth:`close`.
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise InvalidArgumentError(
                f"worker count must be >= 1, got {max_workers}"
            )
        self._max_workers = max_workers or max(1, os.cpu_count() or 1)
        #: Disambiguates fingerprints across strategy instances: two
        #: databases with identically-shaped tables must never share a
        #: worker-cache entry.
        self._token = uuid.uuid4().hex  # ebi: shared-readonly
        self._lock = threading.Lock()
        #: worker slot -> live pipe worker (spawned on first use).
        self._workers: Dict[int, _PipeWorker] = {}
        self._spill_dir = spill_dir
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        #: partition id -> (fingerprint digest, spill path)
        self._spilled: Dict[int, Tuple[str, str]] = {}
        #: partition id -> raw fingerprint state behind the digest.
        #: Lets an unchanged partition skip the JSON + SHA-256 work on
        #: the hot path: state tuples compare by value in nanoseconds.
        self._fingerprints: Dict[int, Tuple[Any, ...]] = {}
        self._swept = False
        self._closed = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run_batch(
        self,
        partitions: Sequence[Partition],
        predicates: Sequence[Predicate],
        *,
        snapshot_rows: Optional[int] = None,
        use_kernels: Optional[bool] = None,
        deadline: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> List[Tuple[List[Any], Dict[str, MetricValue]]]:
        """Spill (if stale), fan out, and collect partition outcomes.

        Returns the same ``(records, metrics snapshot)`` pairs as the
        thread backend's per-partition task, in partition order, so the
        caller's deterministic merge is backend-agnostic.  On a missed
        ``deadline`` the pool is torn down (rebuilt lazily on the next
        call) and :class:`~repro.errors.QueryTimeoutError` is raised.
        """
        specs = [self._spill(partition, registry) for partition in partitions]
        # One task per worker slot, not per partition: contiguous
        # partition chunks amortise the pipe round trip and the
        # predicate pickle over the whole chunk, which is what lets a
        # persistent single-worker pool undercut per-call thread-pool
        # construction on small machines.
        tasks = [
            (path, digest, partition.id, partition.offset)
            for partition, (digest, path) in zip(partitions, specs)
        ]
        nchunks = min(self._max_workers, len(tasks))
        bounds = [
            (len(tasks) * i // nchunks, len(tasks) * (i + 1) // nchunks)
            for i in range(nchunks)
        ]
        chunks = [tasks[lo:hi] for lo, hi in bounds if hi > lo]
        predicates = list(predicates)
        outcomes: List[Tuple[List[Any], Dict[str, MetricValue]]] = []
        # Chunk i always talks to worker slot i, so concurrent callers
        # acquire worker locks in ascending-slot order — they can
        # queue behind each other but never deadlock.  All sends go
        # out before the first receive so multi-worker chunks overlap.
        acquired: List[_PipeWorker] = []
        try:
            engaged: List[_PipeWorker] = []
            for slot, chunk in enumerate(chunks):
                while True:
                    worker = self._ensure_worker(slot)
                    worker.lock.acquire()
                    with self._lock:
                        live = self._workers.get(slot) is worker
                    if live:
                        acquired.append(worker)
                        break
                    # A concurrent teardown replaced this worker while
                    # we waited on its lock; fetch the current one.
                    worker.lock.release()
                worker.send(
                    ("run", (chunk, predicates, snapshot_rows, use_kernels))
                )
                engaged.append(worker)
            for worker in engaged:
                outcomes.extend(
                    _decode_outcome(outcome)
                    for outcome in worker.receive(deadline)
                )
        except QueryTimeoutError:
            self._teardown_workers()
            raise
        except (OSError, EOFError, pickle.UnpicklingError) as exc:
            self._teardown_workers()
            raise WorkerCrashError(
                f"a process-pool worker died mid-query: {exc}"
            ) from exc
        finally:
            for worker in acquired:
                worker.lock.release()
        if registry is not None:
            registry.counter("shard.process.batches").inc()
        return outcomes

    def close(self) -> None:
        """Shut the workers down and delete the spill directory.

        Idempotent.  With a caller-supplied ``spill_dir``, every spill
        artifact this strategy could have produced — live ``.ebsp``
        files *and* orphaned ``.tmp`` files from interrupted writes —
        is removed, not just the tracked paths, so repeated runs never
        accumulate content-addressed leftovers (fingerprints carry a
        per-instance token, so a new run can never reuse them anyway).
        """
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
            tempdir, self._tempdir = self._tempdir, None
            self._spilled.clear()
            self._fingerprints.clear()
            self._closed = True
        for worker in workers:
            worker.stop()
        if tempdir is not None:
            tempdir.cleanup()
        elif self._spill_dir is not None:
            self._sweep_spills(self._spill_dir, keep=frozenset())

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_worker(self, slot: int) -> _PipeWorker:
        with self._lock:
            if self._closed:
                raise InvalidArgumentError(
                    "ProcessPoolStrategy is closed"
                )
            worker = self._workers.get(slot)
            if worker is not None:
                return worker
        # Spawn outside the strategy lock — interpreter start-up takes
        # tens of milliseconds and must not block other dispatchers.
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        fresh = _PipeWorker(process, parent_conn)
        with self._lock:
            if self._closed:
                current = None
            else:
                current = self._workers.setdefault(slot, fresh)
        if current is not fresh:
            fresh.stop()
            if current is None:
                raise InvalidArgumentError(
                    "ProcessPoolStrategy is closed"
                )
        return current

    def _teardown_workers(self) -> None:
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            worker.stop()

    def _spill_root(self) -> str:
        if self._spill_dir is not None:
            os.makedirs(self._spill_dir, exist_ok=True)
            with self._lock:
                sweep = not self._swept
                self._swept = True
                keep = frozenset(
                    os.path.basename(path)
                    for _digest, path in self._spilled.values()
                )
            if sweep:
                # A caller-supplied spill_dir survives across runs, but
                # its contents cannot: fingerprints embed this
                # instance's random token, so no prior run's files are
                # ever addressable again.  Sweep them (plus any
                # ``.tmp`` orphans from interrupted writes) before the
                # first spill of this run lands.
                self._sweep_spills(self._spill_dir, keep=keep)
            return self._spill_dir
        with self._lock:
            if self._tempdir is None:
                self._tempdir = tempfile.TemporaryDirectory(
                    prefix="ebi-spill-"
                )
            return self._tempdir.name

    @staticmethod
    def _sweep_spills(root: str, *, keep: frozenset) -> None:
        """Remove spill artifacts in ``root`` not named in ``keep``.

        Only files matching the strategy's own naming scheme are
        touched — ``p<id>-<digest>.ebsp`` spill files and their
        ``*.ebsp.tmp.*`` write-side temporaries — so a shared
        directory's unrelated contents survive.
        """
        try:
            names = os.listdir(root)
        except OSError:
            return
        for name in names:
            stale_tmp = ".ebsp.tmp." in name
            stale_spill = (
                name.endswith(".ebsp")
                and name.startswith("p")
                and name not in keep
            )
            if not (stale_tmp or stale_spill):
                continue
            try:
                os.unlink(os.path.join(root, name))
            except OSError:
                pass

    # ------------------------------------------------------------------
    # spilling (parent side)
    # ------------------------------------------------------------------
    def _spill(
        self,
        partition: Partition,
        registry: Optional[MetricsRegistry],
    ) -> Tuple[str, str]:
        """Write the partition's spill file if its fingerprint moved.

        Returns ``(digest, path)``.  The file is written outside the
        strategy lock (the lock only guards the bookkeeping maps); two
        racing spills of the same fingerprint converge on the same
        content-addressed path via an atomic replace.
        """
        table = partition.table
        published = table.published_rows()
        indexes = partition.catalog.all_indexes()
        state: Tuple[Any, ...] = (
            published,
            table.mutation_count(),
            tuple(
                tuple(index.epoch())
                if hasattr(index, "epoch")
                else (getattr(index, "_data_version", 0),)
                for index in indexes
            ),
        )
        with self._lock:
            known = self._spilled.get(partition.id)
            if (
                known is not None
                and self._fingerprints.get(partition.id) == state
            ):
                return known
        fingerprint = {
            "token": self._token,
            "partition": partition.id,
            "published": state[0],
            "mutations": state[1],
            "epochs": [list(epoch) for epoch in state[2]],
        }
        digest = hashlib.sha256(
            json.dumps(fingerprint, sort_keys=True).encode("utf-8")
        ).hexdigest()[:20]
        if known is not None and known[0] == digest:
            with self._lock:
                self._fingerprints[partition.id] = state
            return known
        path = self._write_spill(partition, published, indexes, digest)
        if registry is not None:
            registry.counter("shard.process.spills").inc()
        with self._lock:
            previous = self._spilled.get(partition.id)
            self._spilled[partition.id] = (digest, path)
            self._fingerprints[partition.id] = state
        if previous is not None and previous[1] != path:
            try:
                os.unlink(previous[1])
            except OSError:
                pass
        return digest, path

    def _write_spill(
        self,
        partition: Partition,
        published: int,
        indexes: Sequence[Any],
        digest: str,
    ) -> str:
        table = partition.table
        payloads: List[bytes] = []
        columns: List[str] = []
        for index in indexes:
            if not isinstance(
                index,
                (
                    serialization.EncodedBitmapIndex,
                    serialization.CompressedBitmapIndex,
                ),
            ):
                raise InvalidArgumentError(
                    f"the process backend needs serialisable indexes; "
                    f"partition {partition.id} has a "
                    f"{type(index).__name__} on "
                    f"{index.column_name!r} with no payload format"
                )
            payloads.append(serialization.dumps(index))
            columns.append(index.column_name)
        header = {
            "version": 1,
            "table": table.name,
            "partition": partition.id,
            "offset": partition.offset,
            "published": published,
            "void": sorted(
                row_id
                for row_id in table.void_rows()
                if row_id < published
            ),
            "data": {
                name: table.column(name).values()[:published]
                for name in table.column_names
            },
            "index_columns": columns,
        }
        try:
            header_bytes = json.dumps(
                header, allow_nan=False
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise InvalidArgumentError(
                "the process backend needs JSON-serialisable column "
                f"values in table {table.name!r}: {exc}"
            ) from exc
        blob = bytearray(MAGIC)
        blob += _frame(header_bytes)
        for payload in payloads:
            blob += _frame(payload)
        root = self._spill_root()
        path = os.path.join(root, f"p{partition.id}-{digest}.ebsp")
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp, "wb") as handle:
                handle.write(bytes(blob))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
# Partition outcomes cross the pipe as tuples of primitives (bit-vector
# words as raw bytes, cost counters as ints) rather than pickled
# dataclass graphs: reconstructing ``QueryResult``/``LookupCost``
# instances through ``__reduce__`` costs more than the partition batch
# itself for point queries, and the serving tier's qps rides on this
# round trip.


def _encode_outcome(
    outcome: Tuple[List[Any], Dict[str, MetricValue]],
) -> Tuple[List[Tuple[Any, ...]], Dict[str, MetricValue]]:
    records, metrics = outcome
    encoded = [
        (
            rec.result.vector.words.tobytes(),
            len(rec.result.vector),
            rec.result.cost.vectors_accessed,
            rec.result.cost.node_accesses,
            rec.result.cost.rows_checked,
            rec.result.used_scan,
            rec.result.degraded,
            tuple(rec.result.metrics.items()),
            rec.wall_seconds,
            rec.vector_scan,
        )
        for rec in records
    ]
    return encoded, metrics


def _decode_outcome(
    outcome: Tuple[List[Tuple[Any, ...]], Dict[str, MetricValue]],
) -> Tuple[List[Any], Dict[str, MetricValue]]:
    import numpy as np

    from repro.index.base import LookupCost
    from repro.query.executor import QueryResult
    from repro.shard.executor import _PartitionRecord

    from repro.bitmap.bitvector import BitVector

    encoded, metrics = outcome
    records = []
    for (
        words,
        nbits,
        vectors_accessed,
        node_accesses,
        rows_checked,
        used_scan,
        degraded,
        metric_items,
        wall_seconds,
        vector_scan,
    ) in encoded:
        vector = BitVector._from_words(
            np.frombuffer(words, dtype=np.uint64).copy(), nbits
        )
        result = QueryResult(
            vector=vector,
            cost=LookupCost(
                vectors_accessed=vectors_accessed,
                node_accesses=node_accesses,
                rows_checked=rows_checked,
            ),
            used_scan=used_scan,
            degraded=degraded,
            metrics=dict(metric_items),
        )
        records.append(
            _PartitionRecord(
                result=result,
                wall_seconds=wall_seconds,
                vector_scan=vector_scan,
            )
        )
    return records, metrics


# ----------------------------------------------------------------------
# worker side (runs in a spawned process)
# ----------------------------------------------------------------------
def _worker_main(conn: Any) -> None:  # ebi: process-entry
    """Request loop of a spawned worker process.

    Executes ``("run", chunk)`` messages until the pipe closes or a
    ``("stop", None)`` message arrives.  Execution errors are pickled
    back with their type intact so the parent re-raises exactly what
    a thread-backend worker would have raised.
    """
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            kind, payload = pickle.loads(blob)
        except Exception:
            return
        if kind != "run":
            return
        tasks, predicates, snapshot_rows, use_kernels = payload
        reply: Tuple[str, Any]
        try:
            reply = (
                "ok",
                [
                    _encode_outcome(outcome)
                    for outcome in _worker_execute_chunk(
                        tasks, predicates, snapshot_rows, use_kernels
                    )
                ],
            )
        except BaseException as exc:
            try:
                pickle.dumps(exc)
            except Exception:
                exc = WorkerCrashError(
                    f"unpicklable worker error: {exc!r}"
                )
            reply = ("err", exc)
        try:
            conn.send_bytes(
                pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
            )
        except (EOFError, OSError):
            return

#: Deserialised partitions by fingerprint digest, per worker process.
_worker_cache: Dict[str, Partition] = {}
#: digest currently live per partition id (superseded entries drop).
_worker_latest: Dict[int, str] = {}
_worker_cache_lock = threading.Lock()


def _load_partition(
    path: str, digest: str, partition_id: int, offset: int
) -> Tuple[Partition, bool]:
    """The worker's partition replica for ``digest`` (cached)."""
    with _worker_cache_lock:
        cached = _worker_cache.get(digest)
    if cached is not None:
        return cached, True
    with open(path, "rb") as handle:
        reader = _SpillReader(handle.read(), path)
    header = json.loads(reader.next_section().decode("utf-8"))
    table = Table.from_columns(header["table"], header["data"])
    for row_id in header["void"]:
        table.delete(row_id)
    partition = Partition(partition_id, offset, table)
    for _column in header["index_columns"]:
        payload = reader.next_section()
        index = serialization.loads(payload, table)
        partition.catalog.register_index(index)
    with _worker_cache_lock:
        stale = _worker_latest.get(partition_id)
        if stale is not None and stale != digest:
            _worker_cache.pop(stale, None)
        _worker_latest[partition_id] = digest
        _worker_cache[digest] = partition
    return partition, False


def _worker_execute(  # ebi: process-entry
    path: str,
    digest: str,
    predicates: List[Predicate],
    snapshot_rows: Optional[int],
    use_kernels: Optional[bool],
    partition_id: int,
    offset: int,
) -> Tuple[List[Any], Dict[str, MetricValue]]:
    """One partition batch, inside a worker process.

    Rebuilds (or re-maps from the process-local cache) the partition
    replica, then runs the exact unit of work the thread backend runs
    (:func:`repro.shard.executor.run_partition_batch`), so results are
    bit-identical across backends by construction.
    """
    from repro.shard.executor import run_partition_batch

    partition, cache_hit = _load_partition(
        path, digest, partition_id, offset
    )
    records, snapshot = run_partition_batch(
        partition,
        predicates,
        False,
        snapshot_rows=snapshot_rows,
        use_kernels=use_kernels,
    )
    metrics: Dict[str, MetricValue] = dict(snapshot)
    key = (
        "shard.process.worker_cache_hits"
        if cache_hit
        else "shard.process.worker_cache_misses"
    )
    metrics[key] = int(metrics.get(key, 0) or 0) + 1
    return records, metrics


def _worker_execute_chunk(  # ebi: process-entry
    tasks: List[Tuple[str, str, int, int]],
    predicates: List[Predicate],
    snapshot_rows: Optional[int],
    use_kernels: Optional[bool],
) -> List[Tuple[List[Any], Dict[str, MetricValue]]]:
    """A contiguous chunk of partitions, one IPC round trip.

    Order within the chunk is preserved, so the caller's concatenation
    over contiguous chunks reproduces partition order exactly.
    """
    return [
        _worker_execute(
            path,
            digest,
            predicates,
            snapshot_rows,
            use_kernels,
            partition_id,
            offset,
        )
        for path, digest, partition_id, offset in tasks
    ]


__all__ = ["ProcessPoolStrategy"]
