"""Horizontal partitioning and partition-parallel execution.

The scaling layer on top of the paper's encoded bitmap index: tables
split into word-aligned row ranges (:class:`PartitionedTable`), one
child index per range behind the common ``Index`` surface
(:class:`PartitionedIndex`), and a thread-pool executor
(:class:`ParallelExecutor`) that evaluates queries per partition and
merges vectors, costs and metrics deterministically.  See
``docs/partitioning.md``.
"""

from repro.shard.executor import (
    DEFAULT_WORKERS,
    ParallelExecutor,
    PartitionedQueryResult,
    PartitionSlice,
)
from repro.shard.index import PartitionedIndex
from repro.shard.partition import (
    DEFAULT_PARTITIONS,
    Partition,
    PartitionedTable,
    SpannedColumn,
    partition_bounds,
)
from repro.shard.reorder import (
    ORDERINGS,
    column_priority,
    reorder_partitioned,
    reorder_table,
    row_permutation,
)
from repro.shard.residency import ResidencyManager
from repro.shard.scan import ColumnArrayCache, try_vector_scan

__all__ = [
    "DEFAULT_PARTITIONS",
    "DEFAULT_WORKERS",
    "ORDERINGS",
    "ColumnArrayCache",
    "ParallelExecutor",
    "Partition",
    "PartitionSlice",
    "PartitionedIndex",
    "PartitionedQueryResult",
    "PartitionedTable",
    "ResidencyManager",
    "SpannedColumn",
    "column_priority",
    "partition_bounds",
    "reorder_partitioned",
    "reorder_table",
    "row_permutation",
    "try_vector_scan",
]
