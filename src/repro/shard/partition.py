"""Horizontal row-range partitioning.

A :class:`PartitionedTable` splits a table's rows into contiguous
ranges, each backed by an ordinary :class:`~repro.table.table.Table`
with its own :class:`~repro.table.catalog.Catalog`.  Per-partition
indexes stay small (the paper's ``k = ceil(log2 m)`` shrinks with the
partition's local domain) and per-partition result vectors merge by
concatenation — every partition except the last is sized to a
multiple of 64 bits, so :meth:`repro.bitmap.bitvector.BitVector.concat`
joins word arrays without any bit shifting.

Global row ids are ``partition.offset + local_id``; the partition
boundaries never move after construction (appends go to the last
partition), so an id computed at build time stays valid.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bitmap.bitvector import BitVector
from repro.bitmap.ops import WORD_BITS
from repro.errors import TableError
from repro.table.catalog import Catalog
from repro.table.table import Table

#: Default partition count: matches the default worker count of
#: :class:`repro.shard.executor.ParallelExecutor`.
DEFAULT_PARTITIONS = 4


def partition_bounds(nrows: int, partitions: int) -> List[int]:
    """Boundary offsets ``[0, b1, .., nrows]`` for row-range splits.

    Every range except the last is a multiple of 64 rows (one bitmap
    word), which keeps merged result vectors word-aligned.  Ranges
    that would be empty are dropped, so fewer than ``partitions``
    bounds may come back for small tables.

    >>> partition_bounds(200, 4)
    [0, 64, 128, 192, 200]
    >>> partition_bounds(200, 3)
    [0, 64, 128, 200]
    >>> partition_bounds(10, 4)
    [0, 10]
    """
    if partitions < 1:
        raise TableError(f"partition count must be >= 1, got {partitions}")
    total_words = max(1, -(-nrows // WORD_BITS))
    parts = min(partitions, total_words)
    base, extra = divmod(total_words, parts)
    bounds = [0]
    for i in range(parts - 1):
        # Leftover words go to the trailing partitions — the last one
        # already absorbs the unaligned tail and future appends.
        words = base + (1 if i >= parts - extra else 0)
        bounds.append(bounds[-1] + words * WORD_BITS)
    bounds.append(nrows)
    return bounds


class Partition:
    """One contiguous row range: a real table plus its own catalog."""

    __slots__ = ("id", "offset", "table", "catalog")

    def __init__(self, partition_id: int, offset: int, table: Table) -> None:
        self.id = partition_id
        self.offset = offset
        self.table = table
        self.catalog = Catalog()
        self.catalog.register_table(table)

    def __len__(self) -> int:
        return len(self.table)

    def __repr__(self) -> str:
        return (
            f"Partition(id={self.id}, offset={self.offset}, "
            f"rows={len(self.table)})"
        )


class SpannedColumn:
    """Read-only view of one column across every partition.

    Offers the :class:`~repro.table.column.Column` read surface
    (length, item access, distinct values, null accounting) with
    global row ids; writes go through the owning
    :class:`PartitionedTable`.
    """

    __slots__ = ("name", "_parent")

    def __init__(self, name: str, parent: "PartitionedTable") -> None:
        self.name = name
        self._parent = parent

    def _columns(self) -> Iterator[Any]:
        for partition in self._parent.partitions:
            yield partition.table.column(self.name)

    def __len__(self) -> int:
        return len(self._parent)

    def __getitem__(self, row_id: int) -> Any:
        partition, local = self._parent.partition_for(row_id)
        return partition.table.column(self.name)[local]

    def __iter__(self) -> Iterator[Any]:
        for column in self._columns():
            yield from column

    def values(self) -> List[Any]:
        """A copy of the spanned value list (NULLs as ``None``)."""
        return list(self)

    def distinct_values(self) -> Set[Any]:
        distinct: Set[Any] = set()
        for column in self._columns():
            distinct |= column.distinct_values()
        return distinct

    def cardinality(self) -> int:
        return len(self.distinct_values())

    @property
    def null_count(self) -> int:
        return sum(column.null_count for column in self._columns())

    def has_nulls(self) -> bool:
        return any(column.has_nulls() for column in self._columns())

    def __repr__(self) -> str:
        return (
            f"SpannedColumn({self.name!r}, rows={len(self)}, "
            f"partitions={len(self._parent.partitions)})"
        )


class PartitionedTable:
    """A table stored as contiguous row-range partitions.

    Duck-types the :class:`~repro.table.table.Table` read/write surface
    with *global* row ids, translating each operation to the owning
    partition.  Build one with :meth:`from_columns` /
    :meth:`from_rows` / :meth:`from_table` rather than the raw
    constructor.
    """

    def __init__(self, name: str, partitions: Sequence[Partition]) -> None:
        if not partitions:
            raise TableError("a partitioned table needs >= 1 partition")
        self.name = name
        self._partitions = list(partitions)
        self._observers: List[Any] = []

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        name: str,
        columns: Mapping[str, Sequence[Any]],
        *,
        partitions: int = DEFAULT_PARTITIONS,
    ) -> "PartitionedTable":
        """Split whole columns into row-range partitions.

        >>> ptable = PartitionedTable.from_columns(
        ...     "T", {"v": list(range(200))}, partitions=3
        ... )
        >>> [len(p) for p in ptable.partitions]
        [64, 64, 72]
        >>> ptable.column("v")[130]
        130
        """
        if not columns:
            raise TableError("a table needs at least one column")
        lengths = {col: len(values) for col, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise TableError(f"unequal column lengths: {lengths}")
        nrows = next(iter(lengths.values()))
        bounds = partition_bounds(nrows, partitions)
        parts: List[Partition] = []
        for i in range(len(bounds) - 1):
            lo, hi = bounds[i], bounds[i + 1]
            chunk = Table.from_columns(
                f"{name}.p{i}",
                {col: values[lo:hi] for col, values in columns.items()},
            )
            parts.append(Partition(i, lo, chunk))
        return cls(name, parts)

    @classmethod
    def from_rows(
        cls,
        name: str,
        column_names: Sequence[str],
        rows: Iterable[Any],
        *,
        partitions: int = DEFAULT_PARTITIONS,
    ) -> "PartitionedTable":
        """Build from row dicts/sequences (convenience over columns)."""
        columns: Dict[str, List[Any]] = {col: [] for col in column_names}
        for row in rows:
            if isinstance(row, dict):
                unknown = set(row) - set(columns)
                if unknown:
                    raise TableError(f"unknown columns {sorted(unknown)}")
                for col in column_names:
                    columns[col].append(row.get(col))
            else:
                values = list(row)
                if len(values) != len(column_names):
                    raise TableError(
                        f"row has {len(values)} values, expected "
                        f"{len(column_names)}"
                    )
                for col, value in zip(column_names, values):
                    columns[col].append(value)
        return cls.from_columns(name, columns, partitions=partitions)

    @classmethod
    def from_table(
        cls,
        table: Table,
        *,
        partitions: int = DEFAULT_PARTITIONS,
    ) -> "PartitionedTable":
        """Re-partition an existing table (void rows carried over)."""
        columns = {
            col: table.column(col).values() for col in table.column_names
        }
        ptable = cls.from_columns(
            table.name, columns, partitions=partitions
        )
        for row_id in sorted(table.void_rows()):
            ptable.delete(row_id)
        return ptable

    # ------------------------------------------------------------------
    # partition addressing
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> List[Partition]:
        return list(self._partitions)

    def partition_for(self, row_id: int) -> "Tuple[Partition, int]":
        """The partition owning a global row id, plus the local id."""
        if row_id < 0 or row_id >= len(self):
            raise TableError(f"row {row_id} out of range")
        offsets = [p.offset for p in self._partitions]
        i = bisect_right(offsets, row_id) - 1
        partition = self._partitions[i]
        return partition, row_id - partition.offset

    # ------------------------------------------------------------------
    # Table surface (global row ids)
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return self._partitions[0].table.column_names

    def column(self, name: str) -> SpannedColumn:
        # Validate the name against a real partition column first so
        # unknown columns fail here, not on first use of the view.
        self._partitions[0].table.column(name)
        return SpannedColumn(name, self)

    def __contains__(self, name: str) -> bool:
        return name in self._partitions[0].table

    def __len__(self) -> int:
        return sum(len(p.table) for p in self._partitions)

    def live_count(self) -> int:
        return sum(p.table.live_count() for p in self._partitions)

    def append(self, row: Any) -> int:
        """Append one row to the *last* partition (boundaries are
        fixed; only the tail range grows)."""
        last = self._partitions[-1]
        local = last.table.append(row)
        row_id = last.offset + local
        values = last.table.row(local)
        for observer in self._observers:
            observer.on_append(row_id, values)
        return row_id

    def append_rows(self, rows: Iterable[Any]) -> List[int]:
        """Batch append to the last partition, batch-atomically.

        Delegates to :meth:`Table.append_rows` on the tail partition,
        which holds its write lock (and moves its published watermark)
        once for the whole batch — snapshot readers pinned on the
        partition never observe a half-applied batch.
        """
        rows = list(rows)
        if not rows:
            return []
        last = self._partitions[-1]
        local_ids = last.table.append_rows(rows)
        row_ids = [last.offset + local for local in local_ids]
        for row_id, local in zip(row_ids, local_ids):
            values = last.table.row(local)
            for observer in self._observers:
                observer.on_append(row_id, values)
        return row_ids

    def published_rows(self) -> int:
        """Snapshot watermark: full partitions plus the tail's own."""
        last = self._partitions[-1]
        return last.offset + last.table.published_rows()

    def row(self, row_id: int) -> Dict[str, Any]:
        partition, local = self.partition_for(row_id)
        return partition.table.row(local)

    def update(self, row_id: int, column_name: str, value: Any) -> None:
        partition, local = self.partition_for(row_id)
        old = partition.table.column(column_name)[local]
        partition.table.update(local, column_name, value)
        for observer in self._observers:
            observer.on_update(row_id, column_name, old, value)

    def delete(self, row_id: int) -> None:
        partition, local = self.partition_for(row_id)
        partition.table.delete(local)
        for observer in self._observers:
            observer.on_delete(row_id)

    def is_void(self, row_id: int) -> bool:
        partition, local = self.partition_for(row_id)
        return partition.table.is_void(local)

    def void_rows(self) -> Set[int]:
        void: Set[int] = set()
        for partition in self._partitions:
            void |= {
                partition.offset + local
                for local in partition.table.void_rows()
            }
        return void

    def existence_vector(self) -> BitVector:
        return BitVector.concat(
            [p.table.existence_vector() for p in self._partitions]
        )

    def scan(
        self, columns: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, Any]]:
        for partition in self._partitions:
            yield from partition.table.scan(columns)

    # ------------------------------------------------------------------
    # observer protocol (indexes over the whole partitioned table)
    # ------------------------------------------------------------------
    def attach(self, observer: Any) -> None:
        self._observers.append(observer)

    def detach(self, observer: Any) -> None:
        self._observers.remove(observer)

    def __repr__(self) -> str:
        return (
            f"PartitionedTable({self.name!r}, "
            f"columns={self.column_names}, rows={len(self)}, "
            f"partitions={len(self._partitions)})"
        )
