"""A partitioned index: one child index per row-range partition.

``PartitionedIndex`` conforms to :class:`repro.index.base.Index`, so a
catalog/planner that knows nothing about partitioning can still pick
it and call ``lookup``.  Internally it fans each lookup out to the
per-partition child indexes (built by a caller-supplied factory —
encoded bitmap by default) and concatenates the word-aligned partition
result vectors.

The children are also registered in each partition's own catalog, so
the partition-parallel executor can plan *per partition* and the
partition tables notify their child index directly on appends,
updates and deletes — the global index needs no maintenance hooks of
its own.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, cast

from repro.bitmap.bitvector import BitVector
from repro.index.base import Index, LookupCost
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.obs.metrics import get_registry
from repro.query.predicates import Predicate
from repro.shard.partition import PartitionedTable
from repro.table.table import Table

#: Builds one child index for a partition table.
IndexFactory = Callable[[Table, str], Index]


def _default_factory(table: Table, column_name: str) -> Index:
    return EncodedBitmapIndex(table, column_name)


class PartitionedIndex(Index):
    """Per-partition child indexes behind the common ``Index`` surface.

    Parameters
    ----------
    table, column_name:
        The partitioned table and the indexed column.
    factory:
        Keyword-only; builds each partition's child index from
        ``(partition_table, column_name)``.  Defaults to a plain
        :class:`~repro.index.encoded_bitmap.EncodedBitmapIndex` —
        note each child derives its mapping from the *partition's*
        local domain, so ``k`` can differ between partitions.
    """

    kind = "partitioned"

    _degraded_flag: bool

    def __init__(
        self,
        table: PartitionedTable,
        column_name: str,
        *,
        factory: Optional[IndexFactory] = None,
    ) -> None:
        # The base class only reads the Table surface PartitionedTable
        # duck-types (void_rows/column/len), hence the cast.
        super().__init__(cast(Table, table), column_name)
        self.partitioned_table = table
        build = factory if factory is not None else _default_factory
        self._children: List[Index] = []
        for partition in table.partitions:
            child = build(partition.table, column_name)
            partition.catalog.register_index(child)
            self._children.append(child)

    # ------------------------------------------------------------------
    @property
    def children(self) -> List[Index]:
        return list(self._children)

    def child(self, partition_id: int) -> Index:
        return self._children[partition_id]

    # ------------------------------------------------------------------
    # degraded status aggregates over the children: one failed
    # partition degrades the whole index (the planner must not trust a
    # partially wrong answer), but fsck/repair work per child.
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        flag = getattr(self, "_degraded_flag", False)
        children = getattr(self, "_children", ())
        return bool(flag) or any(child.degraded for child in children)

    @degraded.setter
    def degraded(self, value: bool) -> None:
        self._degraded_flag = bool(value)

    # ------------------------------------------------------------------
    def lookup(self, predicate: Predicate) -> BitVector:
        """Fan the lookup out to every child and concatenate.

        Child costs (vectors accessed, rows checked) sum into
        ``last_cost``; the merged vector is word-aligned
        concatenation, so no bits are shifted.
        """
        with self._lock:
            self.last_touched = ()
            self.last_reduction = None
            self.last_cache_hit = None
        cost = LookupCost()
        vectors: List[BitVector] = []
        # Children take their own locks (and publish their own
        # metrics), so the fan-out runs outside this index's lock.
        for child in self._children:
            vectors.append(child.lookup(predicate))
            child_cost = child.last_cost
            cost.vectors_accessed += child_cost.vectors_accessed
            cost.node_accesses += child_cost.node_accesses
            cost.rows_checked += child_cost.rows_checked
        result = BitVector.concat(vectors)
        with self._lock:
            self.last_cost = cost
            self.stats.record(cost)
        # The children already published the per-lookup index.*
        # counters; only the fan-out itself is new information.
        get_registry().counter("shard.index_lookups").inc()
        return result

    # ------------------------------------------------------------------
    def supports(self, predicate: Predicate) -> bool:
        return all(
            child.supports(predicate) for child in self._children
        )

    def nbytes(self) -> int:
        return sum(child.nbytes() for child in self._children)

    def explain_predicate(self, predicate: Predicate) -> Optional[object]:
        """Representative reduction (from the first child) for EXPLAIN;
        per-partition detail comes from
        :meth:`repro.shard.executor.ParallelExecutor.explain`."""
        explain = getattr(self._children[0], "explain_predicate", None)
        if explain is None:
            return None
        return explain(predicate)

    @property
    def width(self) -> Optional[int]:
        """Max child width ``k`` (children may disagree — local domains)."""
        widths = [
            getattr(child, "width", None) for child in self._children
        ]
        known = [w for w in widths if isinstance(w, int)]
        return max(known) if known else None

    # ------------------------------------------------------------------
    # maintenance: partition tables notify the children directly, so
    # the global-level hooks are deliberate no-ops.
    # ------------------------------------------------------------------
    def on_append(self, row_id: int, row: Dict[str, Any]) -> None:
        return None

    def on_update(
        self, row_id: int, column_name: str, old: Any, new: Any
    ) -> None:
        return None

    def on_delete(self, row_id: int) -> None:
        return None
