"""Aggregate evaluation directly on bitmap indexes.

Section 5 of the paper lists, as future work, evaluating aggregate
functions — ``sum``, ``average``, median, N-tile, column products —
directly on the bitmaps "though of no difficulty".  This package
supplies those algorithms:

* :mod:`~repro.aggregate.counts` — COUNT/COUNT DISTINCT from vectors,
* :mod:`~repro.aggregate.sums` — SUM/AVG on bit-sliced and encoded
  indexes (the O'Neil–Quass slice-arithmetic SUM and the per-value
  decomposition for arbitrary encodings),
* :mod:`~repro.aggregate.quantiles` — MEDIAN and N-tiles by walking
  the slices / value codes in order.
"""

from repro.aggregate.counts import count, count_distinct, group_counts
from repro.aggregate.sums import (
    average_bitsliced,
    average_encoded,
    sum_bitsliced,
    sum_encoded,
)
from repro.aggregate.quantiles import median, ntile_boundaries

__all__ = [
    "count",
    "count_distinct",
    "group_counts",
    "sum_bitsliced",
    "sum_encoded",
    "average_bitsliced",
    "average_encoded",
    "median",
    "ntile_boundaries",
]
