"""SUM / AVG directly on bitmap indexes.

Two algorithms, matching the two encoding families:

* **Slice arithmetic** (O'Neil & Quass) for bit-sliced / total-order
  encodings whose code differs from the value by a fixed offset:
  ``SUM = sum_i 2^i * popcount(B_i AND selection) - offset-correction``.
  Cost: one AND + popcount per slice — ``ceil(log2 m)`` vector reads
  regardless of how many rows or values are selected.

* **Value decomposition** for arbitrary (e.g. hierarchy) encodings:
  ``SUM = sum_v v * popcount(f_v AND selection)`` over the mapped
  values — still index-only, but one retrieval function per value.
"""

from __future__ import annotations

from typing import Optional

from repro.bitmap.bitvector import BitVector
from repro.index.bitsliced import BitSlicedIndex
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Equals


def sum_bitsliced(
    index: BitSlicedIndex,
    selection: Optional[BitVector] = None,
) -> float:
    """SUM via slice arithmetic on a bit-sliced index.

    The bit-slice encoding maps the r-th smallest value to code
    ``r + offset`` (offset 1 when code 0 is reserved for void), so
    slice arithmetic yields the sum of *codes*; the code-to-value
    correction is applied per distinct value rank.
    """
    nbits = len(index.table)
    live = _live_vector(index, selection)
    code_sum = 0
    for i in range(index.width):
        slice_i = index.vector(i) & live
        code_sum += (1 << i) * slice_i.count()

    # Correct code -> value: value = decode(code).  Since codes are
    # rank + offset, sum(value) = sum(code) + sum(value - code per row)
    # which needs per-value counts only when values != codes.
    correction = 0.0
    for value in index.mapping.domain():
        code = index.mapping.encode(value)
        if value == code:
            continue
        vector = index.lookup(Equals(index.column_name, value))
        matched = (vector & live).count()
        correction += (value - code) * matched
    return float(code_sum) + correction


def sum_encoded(
    index: EncodedBitmapIndex,
    selection: Optional[BitVector] = None,
) -> float:
    """SUM via per-value decomposition on any encoded bitmap index."""
    live = _live_vector(index, selection)
    total = 0.0
    for value in index.mapping.domain():
        vector = index.lookup(Equals(index.column_name, value))
        matched = (vector & live).count()
        if matched:
            total += float(value) * matched
    return total


def average_bitsliced(
    index: BitSlicedIndex,
    selection: Optional[BitVector] = None,
) -> float:
    """AVG = slice-arithmetic SUM / popcount of the selection."""
    live = _live_vector(index, selection)
    denominator = live.count()
    if denominator == 0:
        raise ZeroDivisionError("average of an empty selection")
    return sum_bitsliced(index, selection) / denominator


def average_encoded(
    index: EncodedBitmapIndex,
    selection: Optional[BitVector] = None,
) -> float:
    """AVG via per-value decomposition."""
    live = _live_vector(index, selection)
    denominator = live.count()
    if denominator == 0:
        raise ZeroDivisionError("average of an empty selection")
    return sum_encoded(index, selection) / denominator


def _live_vector(
    index: EncodedBitmapIndex, selection: Optional[BitVector]
) -> BitVector:
    """Selection restricted to live, non-NULL rows."""
    domain = index.mapping.domain()
    if domain:
        from repro.query.predicates import InList

        live = index.lookup(InList(index.column_name, domain))
    else:
        live = BitVector(len(index.table))
    if selection is not None:
        live &= selection
    return live
