"""MEDIAN and N-tile directly on an encoded bitmap index.

Walks the domain in value order accumulating per-value counts from
the retrieval vectors until the target rank is crossed — no base
table access, no sort.  On a total-order preserving encoding the walk
can equivalently binary-search the slices; the value-order walk works
for every encoding.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bitmap.bitvector import BitVector
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Equals
from repro.errors import InvalidArgumentError


def _ordered_counts(
    index: EncodedBitmapIndex,
    selection: Optional[BitVector],
):
    for value in sorted(index.mapping.domain()):
        vector = index.lookup(Equals(index.column_name, value))
        if selection is not None:
            vector &= selection
        matched = vector.count()
        if matched:
            yield value, matched


def median(
    index: EncodedBitmapIndex,
    selection: Optional[BitVector] = None,
):
    """The lower median of the selected rows' values."""
    total = sum(
        matched for _, matched in _ordered_counts(index, selection)
    )
    if total == 0:
        raise InvalidArgumentError("median of an empty selection")
    target = (total + 1) // 2
    running = 0
    for value, matched in _ordered_counts(index, selection):
        running += matched
        if running >= target:
            return value
    raise AssertionError("rank walk must terminate")  # pragma: no cover


def ntile_boundaries(
    index: EncodedBitmapIndex,
    tiles: int,
    selection: Optional[BitVector] = None,
) -> List:
    """Values splitting the selection into ``tiles`` equal groups.

    Returns ``tiles - 1`` boundary values (the paper's N-tile).
    """
    if tiles < 2:
        raise InvalidArgumentError("need at least 2 tiles")
    counts = list(_ordered_counts(index, selection))
    total = sum(matched for _, matched in counts)
    if total == 0:
        raise InvalidArgumentError("N-tile of an empty selection")
    boundaries = []
    next_tile = 1
    running = 0
    for value, matched in counts:
        running += matched
        while (
            next_tile < tiles
            and running >= next_tile * total / tiles
        ):
            boundaries.append(value)
            next_tile += 1
    return boundaries
