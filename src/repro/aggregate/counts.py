"""COUNT aggregates straight off bitmap vectors.

COUNT(*) over a selection is a single popcount of the result vector —
the cheapest possible aggregate and the reason bitmap indexes shine
for warehouse dashboards.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.bitmap.bitvector import BitVector
from repro.index.encoded_bitmap import EncodedBitmapIndex
from repro.query.predicates import Predicate


def count(
    index: EncodedBitmapIndex,
    predicate: Optional[Predicate] = None,
) -> int:
    """COUNT(*) of rows matching ``predicate`` (all live rows if None).

    Evaluated entirely on the index: the reduced retrieval expression
    produces the selection vector and a popcount finishes the job.
    """
    if predicate is None:
        domain = index.mapping.domain()
        if not domain:
            return 0
        vector = index.lookup(_in_list(index, domain))
    else:
        vector = index.lookup(predicate)
    return vector.count()


def count_distinct(
    index: EncodedBitmapIndex,
    predicate: Optional[Predicate] = None,
) -> int:
    """COUNT(DISTINCT column) under an optional selection.

    Walks the mapped values and counts those whose retrieval vector
    intersects the selection — never touches the base table.
    """
    selection: Optional[BitVector] = None
    if predicate is not None:
        selection = index.lookup(predicate)
    distinct = 0
    for value in index.mapping.domain():
        vector = index.lookup(_equals(index, value))
        if selection is not None:
            vector &= selection
        if vector.any():
            distinct += 1
    return distinct


def group_counts(
    index: EncodedBitmapIndex,
    selection: Optional[BitVector] = None,
) -> Dict[Any, int]:
    """COUNT(*) GROUP BY the indexed column, off the index alone."""
    results: Dict[Any, int] = {}
    for value in index.mapping.domain():
        vector = index.lookup(_equals(index, value))
        if selection is not None:
            vector &= selection
        matched = vector.count()
        if matched:
            results[value] = matched
    return results


def _equals(index: EncodedBitmapIndex, value: Any):
    from repro.query.predicates import Equals

    return Equals(index.column_name, value)


def _in_list(index: EncodedBitmapIndex, values):
    from repro.query.predicates import InList

    return InList(index.column_name, values)
