"""Range-based encoded bitmap indexing (Section 2.3, Figures 7-8).

When the range selections are pre-definable, the attribute domain is
first split into the disjoint partitions induced by the predicate
endpoints, then the *intervals* (not the individual values) are
encoded.  A range selection becomes an IN-list over intervals whose
retrieval function reduces well when the interval codes are chosen
with the usual well-defined machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.encoding.heuristics import encode_for_predicates
from repro.encoding.mapping import MappingTable
from repro.encoding.well_defined import check_mapping
from repro.errors import InvalidArgumentError


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open interval ``[low, high)`` over a numeric domain."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise InvalidArgumentError(f"empty interval [{self.low}, {self.high})")

    def contains(self, value: float) -> bool:
        return self.low <= value < self.high

    def __str__(self) -> str:
        low = int(self.low) if float(self.low).is_integer() else self.low
        high = int(self.high) if float(self.high).is_integer() else self.high
        return f"[{low},{high})"


@dataclass(frozen=True)
class RangePartition:
    """The disjoint intervals induced by a set of range predicates."""

    intervals: Tuple[Interval, ...]

    def locate(self, value: float) -> Interval:
        """The interval containing ``value``."""
        for interval in self.intervals:
            if interval.contains(value):
                return interval
        raise InvalidArgumentError(f"value {value} outside the partitioned domain")

    def covering(self, low: float, high: float) -> List[Interval]:
        """Intervals fully covering the half-open query ``[low, high)``.

        Range-based indexing requires query ranges to align with
        predicate boundaries; misaligned queries raise ``ValueError``
        (the caller should fall back to a value-level index).
        """
        selected = [
            interval
            for interval in self.intervals
            if interval.low >= low and interval.high <= high
        ]
        if not selected:
            raise InvalidArgumentError(
                f"query [{low},{high}) does not cover any interval"
            )
        if selected[0].low != low or selected[-1].high != high:
            raise InvalidArgumentError(
                f"query [{low},{high}) is not aligned with the partition"
            )
        return selected

    def __len__(self) -> int:
        return len(self.intervals)


def partition_from_predicates(
    domain_low: float,
    domain_high: float,
    predicates: Iterable[Tuple[float, float]],
) -> RangePartition:
    """Split ``[domain_low, domain_high)`` at all predicate endpoints.

    Reproduces the paper's Figure 7: predicates ``6<=A<10``,
    ``8<=A<12``, ``10<=A<13`` and ``16<=A<20`` over ``[6, 20)`` yield
    the six partitions ``[6,8) [8,10) [10,12) [12,13) [13,16) [16,20)``.
    """
    if domain_high <= domain_low:
        raise InvalidArgumentError("empty attribute domain")
    cuts = {domain_low, domain_high}
    for low, high in predicates:
        if high <= low:
            raise InvalidArgumentError(f"empty predicate range [{low}, {high})")
        if low < domain_low or high > domain_high:
            raise InvalidArgumentError(
                f"predicate [{low},{high}) outside the domain "
                f"[{domain_low},{domain_high})"
            )
        cuts.add(low)
        cuts.add(high)
    ordered = sorted(cuts)
    intervals = tuple(
        Interval(low, high) for low, high in zip(ordered, ordered[1:])
    )
    return RangePartition(intervals=intervals)


def range_encoding(
    partition: RangePartition,
    predicates: Iterable[Tuple[float, float]],
    weights: Optional[Sequence[float]] = None,
    reserve_void_zero: bool = False,
    local_search_steps: int = 400,
    seed: Optional[int] = 0,
) -> MappingTable:
    """Encode the partition's intervals, optimised for the predicates.

    Each predicate is translated into the IN-list of intervals it
    covers, and :func:`encode_for_predicates` searches for a mapping
    under which those IN-lists reduce — the construction of Figure 8.
    """
    predicate_list = list(predicates)
    in_lists = [
        partition.covering(low, high) for low, high in predicate_list
    ]
    return check_mapping(encode_for_predicates(
        partition.intervals,
        in_lists,
        weights=weights,
        reserve_void_zero=reserve_void_zero,
        local_search_steps=local_search_steps,
        seed=seed,
    ))
