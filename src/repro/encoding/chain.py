"""Chains and prime chains (Definitions 2.3 and 2.4).

A *chain* on a set of distinct codes is a cyclic ordering in which
consecutive codes (including last-to-first) are at binary distance 1 —
i.e. a Hamiltonian cycle of the subgraph of the hypercube induced by
the set.  A *prime chain* exists on a set of size ``2^p`` when a chain
exists and all pairwise distances are at most ``p``; the codes then
occupy a ``p``-dimensional subcube, which is what makes the retrieval
function collapse to a single short product term.

Finding a chain is a Hamiltonian-cycle search; the sets involved in
well-defined-encoding checks are small (predicate IN-lists), so a
backtracking search with degree-based pruning is entirely adequate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.encoding.distance import binary_distance


def is_chain(sequence: Sequence[int]) -> bool:
    """Check Definition 2.3 on an explicit ordering.

    True when every consecutive pair — and the wrap-around pair — is at
    binary distance exactly 1 and all codes are distinct.
    """
    n = len(sequence)
    if n < 2:
        return False
    if len(set(sequence)) != n:
        return False
    return all(
        binary_distance(sequence[i], sequence[(i + 1) % n]) == 1
        for i in range(n)
    )


def is_prime_chain(sequence: Sequence[int]) -> bool:
    """Check Definition 2.4 on an explicit ordering.

    The set size must be a power of two ``2^p``, the ordering must be a
    chain, and all pairwise distances must be at most ``p``.
    """
    n = len(sequence)
    if n < 1 or n & (n - 1):
        return False
    p = n.bit_length() - 1
    if n >= 2 and not is_chain(sequence):
        return False
    codes = list(sequence)
    return all(
        binary_distance(codes[i], codes[j]) <= p
        for i in range(n)
        for j in range(i + 1, n)
    )


def _adjacency(codes: Sequence[int]) -> Dict[int, List[int]]:
    adj: Dict[int, List[int]] = {code: [] for code in codes}
    code_list = list(codes)
    for i, a in enumerate(code_list):
        for b in code_list[i + 1 :]:
            if binary_distance(a, b) == 1:
                adj[a].append(b)
                adj[b].append(a)
    return adj


def find_chain(codes: Sequence[int]) -> Optional[List[int]]:
    """Find some chain (Hamiltonian cycle at distance 1) on ``codes``.

    Returns an ordering, or ``None`` when no chain exists.  A set with
    fewer than two codes has no chain by Definition 2.3.
    """
    unique = list(dict.fromkeys(codes))
    n = len(unique)
    if n < 2:
        return None
    # Parity argument: the hypercube is bipartite, so a Hamiltonian
    # cycle needs an even number of vertices with equal parity classes.
    if n % 2:
        return None
    even = sum(1 for code in unique if code.bit_count() % 2 == 0)
    if even * 2 != n:
        return None

    adjacency = _adjacency(unique)
    if any(len(neigh) < 2 for neigh in adjacency.values()):
        return None

    start = unique[0]
    path = [start]
    used: Set[int] = {start}

    def backtrack() -> bool:
        if len(path) == n:
            return binary_distance(path[-1], start) == 1
        current = path[-1]
        # Visit scarce-degree neighbours first (Warnsdorff-style).
        candidates = sorted(
            (code for code in adjacency[current] if code not in used),
            key=lambda code: sum(
                1 for nxt in adjacency[code] if nxt not in used
            ),
        )
        for code in candidates:
            path.append(code)
            used.add(code)
            if backtrack():
                return True
            path.pop()
            used.remove(code)
        return False

    if backtrack():
        return path
    return None


def find_prime_chain(codes: Sequence[int]) -> Optional[List[int]]:
    """Find a prime chain ordering on ``codes`` (Definition 2.4).

    Returns ``None`` when the set size is not a power of two, the
    pairwise-distance bound fails, or no chain exists.  The singleton
    set (``2^0``) is trivially a prime chain.
    """
    unique = list(dict.fromkeys(codes))
    n = len(unique)
    if n < 1 or n & (n - 1):
        return None
    p = n.bit_length() - 1
    for i, a in enumerate(unique):
        for b in unique[i + 1 :]:
            if binary_distance(a, b) > p:
                return None
    if n == 1:
        return list(unique)
    return find_chain(unique)
