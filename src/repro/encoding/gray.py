"""Gray code utilities.

The reflected binary Gray code is the workhorse for constructing
chains: consecutive Gray codes differ in exactly one bit, so any
2^p-aligned window of the Gray sequence forms a chain, and the full
sequence of a subcube forms a prime chain.  The encoding heuristics
use it to lay predicate subdomains onto subcubes.
"""

from __future__ import annotations

from typing import Iterator, List
from repro.errors import InvalidArgumentError


def gray_code(index: int) -> int:
    """The ``index``-th reflected binary Gray code."""
    if index < 0:
        raise InvalidArgumentError("index must be non-negative")
    return index ^ (index >> 1)


def inverse_gray(code: int) -> int:
    """Position of ``code`` in the reflected Gray sequence."""
    if code < 0:
        raise InvalidArgumentError("code must be non-negative")
    index = code
    shift = 1
    while (code >> shift) > 0:
        index ^= code >> shift
        shift += 1
    # Equivalent fold: iteratively xor shifted copies.
    index = code
    mask = code >> 1
    while mask:
        index ^= mask
        mask >>= 1
    return index


def gray_sequence(width: int) -> List[int]:
    """The full Gray sequence of a ``width``-bit cube (a prime chain)."""
    if width < 0:
        raise InvalidArgumentError("width must be non-negative")
    return [gray_code(i) for i in range(1 << width)]


def gray_pairs(width: int) -> Iterator[tuple]:
    """Consecutive pairs of the Gray sequence (each at distance 1)."""
    seq = gray_sequence(width)
    for i, code in enumerate(seq):
        yield code, seq[(i + 1) % len(seq)]
