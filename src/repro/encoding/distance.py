"""Binary distance (Definition 2.2).

The binary distance of two codes is the Hamming distance:
``lambda(x, y) = Count(x XOR y)``.
"""

from __future__ import annotations

from typing import Iterator
from repro.errors import InvalidArgumentError


def binary_distance(x: int, y: int) -> int:
    """Hamming distance between two non-negative code integers."""
    if x < 0 or y < 0:
        raise InvalidArgumentError("codes must be non-negative")
    return (x ^ y).bit_count()


def hamming_ball(center: int, radius: int, width: int) -> Iterator[int]:
    """All codes of ``width`` bits within ``radius`` of ``center``.

    Enumerated in ascending numeric order.
    """
    if radius < 0:
        raise InvalidArgumentError("radius must be non-negative")
    full = (1 << width) - 1
    if center & ~full:
        raise InvalidArgumentError(f"center {center} exceeds width {width}")
    for code in range(1 << width):
        if binary_distance(center, code) <= radius:
            yield code


def neighbors(code: int, width: int) -> Iterator[int]:
    """Codes at binary distance exactly 1 from ``code``."""
    full = (1 << width) - 1
    if code & ~full:
        raise InvalidArgumentError(f"code {code} exceeds width {width}")
    for i in range(width):
        yield code ^ (1 << i)
