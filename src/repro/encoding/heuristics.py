"""Heuristic search for well-defined encodings.

The paper proves what a good encoding achieves (Theorems 2.2/2.3) but
leaves the search algorithm to future work, noting brute force is
exponential.  This module supplies the missing piece:

1. a *predicate-signature ordering* — values that co-occur in the
   pre-defined IN-list predicates are placed next to each other, and
   codes are assigned along the reflected Gray sequence so contiguous
   groups land on subcubes;
2. an optional *local search* that swaps code pairs while the total
   reduced vector count over all predicates improves.

``encoding_cost`` is the objective from Theorem 2.3: the total number
of bitmap vectors read when evaluating every predicate once (weights
allow modelling predicate frequencies).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.boolean.reduction import reduce_values
from repro.encoding.gray import gray_code
from repro.encoding.mapping import MappingTable, code_width
from repro.encoding.well_defined import check_mapping
from repro.errors import InvalidArgumentError

Predicate = Sequence[Hashable]


def sequential_encoding(
    values: Iterable[Hashable], reserve_void_zero: bool = True
) -> MappingTable:
    """Codes assigned in iteration order (the paper's default)."""
    return check_mapping(
        MappingTable.from_values(values, reserve_void_zero=reserve_void_zero)
    )


def random_encoding(
    values: Iterable[Hashable],
    seed: Optional[int] = None,
    reserve_void_zero: bool = True,
) -> MappingTable:
    """Random one-to-one encoding — the ablation baseline."""
    ordered = list(dict.fromkeys(values))
    extra = 1 if reserve_void_zero else 0
    width = code_width(max(1, len(ordered) + extra))
    codes = list(range(1 << width))
    if reserve_void_zero:
        codes.remove(0)
    rng = random.Random(seed)
    rng.shuffle(codes)
    table = MappingTable(width=width, reserve_void_zero=reserve_void_zero)
    for value, code in zip(ordered, codes):
        table.assign(value, code)
    return check_mapping(table)


def encoding_cost(
    mapping: MappingTable,
    predicates: Sequence[Predicate],
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Theorem 2.3 objective: weighted vectors-read over all predicates."""
    if weights is None:
        weights = [1.0] * len(predicates)
    if len(weights) != len(predicates):
        raise InvalidArgumentError("weights must match predicates")
    dont_cares = mapping.unused_codes()
    total = 0.0
    for predicate, weight in zip(predicates, weights):
        codes = [mapping.encode(value) for value in predicate]
        reduced = reduce_values(codes, mapping.width, dont_cares=dont_cares)
        total += weight * reduced.vector_count()
    return total


def _signatures(
    values: List[Hashable], predicates: Sequence[Predicate]
) -> Dict[Hashable, Tuple[int, ...]]:
    predicate_sets = [set(predicate) for predicate in predicates]
    return {
        value: tuple(
            1 if value in members else 0
            for members in predicate_sets
        )
        for value in values
    }


def _signature_order(
    values: List[Hashable], predicates: Sequence[Predicate]
) -> List[Hashable]:
    """Order values by predicate membership signature.

    Values sharing predicates get identical signatures and become
    adjacent; signatures are ordered so that similar ones are close
    (sorted tuples give a lexicographic grouping which is a good
    starting point for the local search).
    """
    membership = _signatures(values, predicates)
    order = sorted(
        values,
        key=lambda v: (membership[v], str(v)),
        reverse=True,
    )
    return order


def _similarity_chain_order(
    values: List[Hashable], predicates: Sequence[Predicate]
) -> List[Hashable]:
    """Greedy chain: repeatedly append the value whose predicate
    signature is most similar to the last one placed.

    Overlapping predicates (the paper's {a,b,c,d} / {c,d,e,f} case)
    come out interleaved — a, b, c, d, e, f — so consecutive Gray
    windows cover each predicate.
    """
    membership = _signatures(values, predicates)

    def similarity(a: Hashable, b: Hashable) -> int:
        return sum(
            1
            for x, y in zip(membership[a], membership[b])
            if x == 1 and y == 1
        ) - sum(
            1
            for x, y in zip(membership[a], membership[b])
            if x != y
        )

    remaining = sorted(values, key=str)
    if not remaining:
        return []
    # Start from a value in the fewest predicates (chain endpoints).
    start = min(
        remaining, key=lambda v: (sum(membership[v]), str(v))
    )
    chain = [start]
    remaining.remove(start)
    while remaining:
        last = chain[-1]
        best = max(
            remaining, key=lambda v: (similarity(last, v), str(v))
        )
        chain.append(best)
        remaining.remove(best)
    return chain


def encode_for_predicates(
    values: Iterable[Hashable],
    predicates: Sequence[Predicate],
    weights: Optional[Sequence[float]] = None,
    reserve_void_zero: bool = True,
    local_search_steps: int = 200,
    seed: Optional[int] = 0,
) -> MappingTable:
    """Find a good encoding for a set of IN-list predicates.

    Parameters
    ----------
    values:
        The attribute domain.
    predicates:
        Pre-defined selections, each a collection of domain values.
    weights:
        Optional relative frequencies per predicate.
    reserve_void_zero:
        Keep code 0 for the void sentinel (Theorem 2.1).
    local_search_steps:
        Number of improving-swap attempts after the constructive phase
        (0 disables local search).
    seed:
        RNG seed for the swap proposals (deterministic by default).

    Returns
    -------
    :class:`MappingTable`
        The best encoding found.
    """
    ordered = list(dict.fromkeys(values))
    for predicate in predicates:
        for value in predicate:
            if value not in ordered:
                raise InvalidArgumentError(
                    f"predicate value {value!r} is not in the domain"
                )
    extra = 1 if reserve_void_zero else 0
    width = code_width(max(1, len(ordered) + extra))

    # Constructive phase: candidate orderings laid onto the (cyclic)
    # Gray sequence at every offset; keep the cheapest.  Skipping
    # code 0 keeps it free for VOID.
    size = 1 << width
    orderings = [_signature_order(ordered, predicates)]
    if predicates:
        orderings.append(_similarity_chain_order(ordered, predicates))

    table: Optional[MappingTable] = None
    best_cost = float("inf")
    offsets = range(size) if size <= 64 else range(0, size, size // 64)
    for layout in orderings:
        for offset in offsets:
            available = [
                gray_code((offset + i) % size) for i in range(size)
            ]
            if reserve_void_zero:
                available = [c for c in available if c != 0]
            candidate = MappingTable(
                width=width, reserve_void_zero=reserve_void_zero
            )
            for value, code in zip(layout, available):
                candidate.assign(value, code)
            cost = (
                encoding_cost(candidate, predicates, weights)
                if predicates
                else 0.0
            )
            if cost < best_cost:
                table, best_cost = candidate, cost
            if not predicates:
                break
        if not predicates:
            break

    if local_search_steps <= 0 or not predicates:
        return check_mapping(table)

    rng = random.Random(seed)
    swappable = list(ordered)
    all_codes = {value: table.encode(value) for value in swappable}
    spare_codes = [
        code for code in table.unused_codes()
    ]

    for _ in range(local_search_steps):
        if len(swappable) < 2:
            break
        a, b = rng.sample(swappable, 2)
        proposal = dict(all_codes)
        proposal[a], proposal[b] = proposal[b], proposal[a]
        # Occasionally relocate a value onto a spare code instead.
        if spare_codes and rng.random() < 0.25:
            target = rng.choice(spare_codes)
            proposal = dict(all_codes)
            proposal[a] = target
        candidate = _table_from_codes(
            proposal, width, reserve_void_zero
        )
        cost = encoding_cost(candidate, predicates, weights)
        if cost < best_cost:
            best_cost = cost
            table = candidate
            all_codes = proposal
            spare_codes = list(table.unused_codes())
    return check_mapping(table)


def _table_from_codes(
    value_codes: Dict[Hashable, int],
    width: int,
    reserve_void_zero: bool,
) -> MappingTable:
    table = MappingTable(width=width, reserve_void_zero=reserve_void_zero)
    for value, code in value_codes.items():
        table.assign(value, code)
    return table
