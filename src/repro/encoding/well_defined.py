"""Well-defined encodings (Definition 2.5, Theorems 2.1-2.3).

An encoding is *well-defined* with respect to a selection
``A IN {v_0 .. v_{n-1}}`` when the codes of the selected values sit on
chains/prime chains as prescribed by Definition 2.5; Theorem 2.2 then
guarantees the number of bitmap vectors accessed is minimal.

The expensive sub-question — does a subset of codes admit a *prime
chain*? — has a clean structural answer used as a fast path: a set of
``2^p`` codes admits a prime chain exactly when it fills a
``p``-dimensional subcube (all pairwise distances <= p forces the
codes into a common subcube, and the Gray sequence of a subcube is a
prime chain).  The general search is retained for small sets as a
cross-check.
"""

from __future__ import annotations

from itertools import combinations
from typing import (
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.boolean.reduction import reduce_values
from repro.encoding.chain import find_chain, find_prime_chain
from repro.encoding.distance import binary_distance
from repro.encoding.mapping import NULL, VOID, MappingTable
from repro.errors import EncodingError, InvalidArgumentError

#: Above this subdomain size, prime-chain existence is decided by the
#: subcube fast path only (exhaustive subset search would blow up).
_EXHAUSTIVE_LIMIT = 12


def check_mapping(mapping: Optional[MappingTable]) -> MappingTable:
    """Structural well-definedness check run by encoding constructors.

    Verifies the invariants of Definition 2.1 and Theorem 2.1 that
    every constructed encoding must satisfy regardless of the
    predicate set:

    * the mapping is one-to-one (no code carries two values),
    * every code fits the declared width ``k``,
    * when the VOID sentinel is mapped, it carries code 0, and
    * sentinels do not crowd out the domain (NULL never takes code 0
      while VOID is absent *and* code 0 is handed to a real value is
      caught by the one-to-one/VOID checks above).

    Returns the mapping unchanged so constructors can end with
    ``return check_mapping(table)``; ebilint's EBI202 requires exactly
    that call.  Raises :class:`~repro.errors.EncodingError` (or a
    subclass) on violation.
    """
    if mapping is None:
        raise EncodingError("encoding construction produced no mapping")
    codes = mapping.codes()
    if len(set(codes)) != len(codes):
        raise EncodingError("mapping is not one-to-one: duplicate codes")
    top = 1 << mapping.width
    for value, code in mapping.items():
        if not 0 <= code < top:
            raise EncodingError(
                f"code {code} of value {value!r} does not fit "
                f"width {mapping.width}"
            )
    if VOID in mapping and mapping.encode(VOID) != 0:
        raise EncodingError(
            "Theorem 2.1 violated: VOID is mapped but not to code 0"
        )
    if NULL in mapping and VOID not in mapping and mapping.encode(NULL) == 0:
        raise EncodingError(
            "NULL occupies code 0; Theorem 2.1 reserves it for VOID"
        )
    return mapping


def subcube_mask(codes: Iterable[int]) -> Optional[Tuple[int, int]]:
    """If ``codes`` exactly fill a subcube, return ``(bits, care)``.

    ``care`` has a 1 for every fixed dimension and ``bits`` holds the
    fixed values; free dimensions are the subcube axes.  Returns
    ``None`` when the set is not a full subcube.
    """
    code_list = sorted(set(codes))
    n = len(code_list)
    if n == 0 or n & (n - 1):
        return None
    common_and = code_list[0]
    common_or = code_list[0]
    for code in code_list[1:]:
        common_and &= code
        common_or |= code
    free = common_or & ~common_and
    if 1 << free.bit_count() != n:
        return None
    care = ~free
    bits = common_and
    # Verify every combination of the free bits is present.
    expected = set()
    free_bits = [i for i in range(common_or.bit_length() + 1) if (free >> i) & 1]
    for combo in range(n):
        value = bits
        for pos, var in enumerate(free_bits):
            if (combo >> pos) & 1:
                value |= 1 << var
        expected.add(value)
    if expected != set(code_list):
        return None
    return bits, care & ((1 << max(1, common_or.bit_length())) - 1)


def _has_prime_chain_subset(codes: Sequence[int], size: int) -> bool:
    """Does some ``size``-subset of ``codes`` admit a prime chain?"""
    code_set = set(codes)
    if size == 1:
        return bool(code_set)
    # Fast path: a full (log2 size)-subcube inside the code set.
    for subset_codes in _subcubes_within(code_set, size):
        return True
    if len(code_set) <= _EXHAUSTIVE_LIMIT:
        for subset in combinations(sorted(code_set), size):
            if find_prime_chain(subset) is not None:
                return True
    return False


def _subcubes_within(code_set: Set[int], size: int) -> Iterator[List[int]]:
    """Yield full subcubes of ``size`` codes contained in ``code_set``."""
    p = size.bit_length() - 1
    seen = set()
    width = max((code.bit_length() for code in code_set), default=1)
    width = max(width, 1)
    for code in sorted(code_set):
        for free_dims in combinations(range(width), p):
            free = 0
            for dim in free_dims:
                free |= 1 << dim
            base = code & ~free
            key = (base, free)
            if key in seen:
                continue
            seen.add(key)
            members = []
            complete = True
            for combo in range(size):
                value = base
                for pos, dim in enumerate(free_dims):
                    if (combo >> pos) & 1:
                        value |= 1 << dim
                if value not in code_set:
                    complete = False
                    break
                members.append(value)
            if complete:
                yield members


def is_well_defined(
    mapping: MappingTable,
    subdomain: Iterable[Hashable],
) -> bool:
    """Definition 2.5: is ``mapping`` well-defined w.r.t. the IN-list?

    ``subdomain`` is the set of selected attribute values (at least
    two, per the definition).
    """
    values = list(dict.fromkeys(subdomain))
    n = len(values)
    if n < 2:
        raise InvalidArgumentError("Definition 2.5 requires a subdomain of size >= 2")
    codes = [mapping.encode(value) for value in values]
    p = n.bit_length() - 1  # floor(log2 n)

    if n == 1 << p:
        # Case (i): a prime chain must exist on the codes themselves.
        return find_prime_chain(codes) is not None

    half = 1 << p
    if n % 2 == 0:
        # Case (ii): prime chain on some 2^p subset, chain on the whole
        # set, pairwise distances <= p + 1.
        if not _has_prime_chain_subset(codes, half):
            return False
        if find_chain(codes) is None:
            return False
        return _pairwise_within(codes, p + 1)

    # Case (iii): n odd — borrow one code w from outside the subdomain.
    if not _has_prime_chain_subset(codes, half):
        return False
    selected = set(codes)
    candidates = [
        code
        for value, code in mapping.items()
        if code not in selected
    ]
    for extra in candidates:
        extended = codes + [extra]
        if not _pairwise_within(extended, p + 1):
            continue
        if find_chain(extended) is not None:
            return True
    return False


def _pairwise_within(codes: Sequence[int], bound: int) -> bool:
    return all(
        binary_distance(a, b) <= bound
        for i, a in enumerate(codes)
        for b in codes[i + 1 :]
    )


def verify_well_defined_cost(
    mapping: MappingTable,
    subdomain: Iterable[Hashable],
) -> int:
    """Vectors accessed by the reduced retrieval function (Theorem 2.2).

    Reduces the OR of the selected values' minterms — treating unused
    codes as don't-cares — and returns the distinct-variable count,
    i.e. the measured ``c_e`` for the selection under this mapping.
    """
    values = list(dict.fromkeys(subdomain))
    codes = [mapping.encode(value) for value in values]
    reduced = reduce_values(
        codes, mapping.width, dont_cares=mapping.unused_codes()
    )
    return reduced.vector_count()
