"""The mapping table of an encoded bitmap index.

Definition 2.1 of the paper: an encoded bitmap index consists of the
bitmap vectors, a *one-to-one mapping* from the attribute domain onto
``k``-bit codes (``k = ceil(log2 m)``), and the retrieval functions.
:class:`MappingTable` is that mapping, including the paper's treatment
of non-existing (void) tuples and NULLs: they are encoded together
with the ordinary values, and — per Theorem 2.1 — code 0 is reserved
for void so selections on existing tuples need no existence filter.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import (
    CodeWidthError,
    DomainError,
    DuplicateCodeError,
    DuplicateValueError,
    InvalidArgumentError,
)


class _Sentinel:
    """Singleton marker values for void tuples and NULLs."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return f"<{self._name}>"


#: Artificial key for non-existing (deleted) tuples.  Theorem 2.1:
#: reserving code 0 for VOID lets every selection on existing tuples
#: drop the existence conjunct.
VOID = _Sentinel("VOID")

#: Artificial key for NULL attribute values.
NULL = _Sentinel("NULL")


def code_width(cardinality: int) -> int:
    """``k = ceil(log2 m)``: vectors needed for ``m`` distinct values."""
    if cardinality < 1:
        raise InvalidArgumentError(f"cardinality must be positive, got {cardinality}")
    if cardinality == 1:
        return 1
    return math.ceil(math.log2(cardinality))


class MappingTable:
    """One-to-one mapping between attribute values and k-bit codes.

    Parameters
    ----------
    width:
        Number of code bits ``k`` (equals the number of bitmap vectors).
    reserve_void_zero:
        When True (default), code 0 is pre-assigned to :data:`VOID`
        following Theorem 2.1.
    """

    def __init__(self, width: int = 1, reserve_void_zero: bool = True) -> None:
        if width < 1:
            raise InvalidArgumentError(f"width must be >= 1, got {width}")
        self._width = width
        self._value_to_code: Dict[Hashable, int] = {}
        self._code_to_value: Dict[int, Hashable] = {}
        if reserve_void_zero:
            self.assign(VOID, 0)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[Hashable, int]],
        width: Optional[int] = None,
        reserve_void_zero: bool = False,
    ) -> "MappingTable":
        """Build from explicit ``(value, code)`` pairs.

        When ``width`` is omitted it is inferred from the largest code
        (at least one bit).
        """
        pair_list = list(pairs)
        if width is None:
            highest = max((code for _, code in pair_list), default=0)
            width = max(1, highest.bit_length())
        table = cls(width=width, reserve_void_zero=reserve_void_zero)
        for value, code in pair_list:
            table.assign(value, code)
        return table

    @classmethod
    def from_values(
        cls,
        values: Iterable[Hashable],
        reserve_void_zero: bool = True,
        include_null: bool = False,
    ) -> "MappingTable":
        """Sequentially encode a domain.

        Codes are assigned in iteration order starting after any
        reserved codes, matching the paper's running example where
        ``{a, b, c}`` maps to ``00, 01, 10``.
        """
        ordered = list(dict.fromkeys(values))
        extra = (1 if reserve_void_zero else 0) + (1 if include_null else 0)
        width = code_width(max(1, len(ordered) + extra))
        table = cls(width=width, reserve_void_zero=reserve_void_zero)
        if include_null:
            table.assign(NULL, table.next_free_code())
        for value in ordered:
            table.assign(value, table.next_free_code())
        return table

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Code width ``k`` — the number of bitmap vectors."""
        return self._width

    def __len__(self) -> int:
        return len(self._value_to_code)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._value_to_code

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._value_to_code)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MappingTable):
            return NotImplemented
        return (
            self._width == other._width
            and self._value_to_code == other._value_to_code
        )

    def __repr__(self) -> str:
        return (
            f"MappingTable(width={self._width}, "
            f"values={len(self._value_to_code)})"
        )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def encode(self, value: Hashable) -> int:
        """Code of ``value``; raises :class:`DomainError` if unknown."""
        try:
            return self._value_to_code[value]
        except KeyError:
            raise DomainError(f"value {value!r} is not in the domain") from None

    def decode(self, code: int) -> Hashable:
        """Value carrying ``code``; raises :class:`DomainError` if unused."""
        try:
            return self._code_to_value[code]
        except KeyError:
            raise DomainError(f"code {code:#b} is not assigned") from None

    def has_code(self, code: int) -> bool:
        return code in self._code_to_value

    def values(self) -> List[Hashable]:
        """All mapped values (including sentinels), insertion-ordered."""
        return list(self._value_to_code)

    def domain(self) -> List[Hashable]:
        """Mapped values excluding the VOID/NULL sentinels."""
        return [
            value
            for value in self._value_to_code
            if value is not VOID and value is not NULL
        ]

    def codes(self) -> List[int]:
        """All assigned codes, in value insertion order."""
        return list(self._value_to_code.values())

    def items(self) -> Iterator[Tuple[Hashable, int]]:
        return iter(self._value_to_code.items())

    def unused_codes(self) -> List[int]:
        """Codes of the k-cube not assigned to any value (don't-cares)."""
        return [
            code
            for code in range(1 << self._width)
            if code not in self._code_to_value
        ]

    def next_free_code(self) -> int:
        """Smallest unassigned code; raises when the cube is full."""
        for code in range(1 << self._width):
            if code not in self._code_to_value:
                return code
        raise CodeWidthError(
            f"all {1 << self._width} codes of width {self._width} are in use"
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def assign(self, value: Hashable, code: int) -> None:
        """Bind ``value`` to ``code``, enforcing the one-to-one property."""
        if value in self._value_to_code:
            raise DuplicateValueError(f"value {value!r} already mapped")
        if code in self._code_to_value:
            raise DuplicateCodeError(
                f"code {code:#b} already maps {self._code_to_value[code]!r}"
            )
        if code < 0 or code >= (1 << self._width):
            raise CodeWidthError(
                f"code {code} does not fit in width {self._width}"
            )
        self._value_to_code[value] = code
        self._code_to_value[code] = value

    def add_value(self, value: Hashable) -> Tuple[int, bool]:
        """Add a new domain value, expanding the width if necessary.

        Implements the paper's *update with domain expansion*
        (Equation 1): if the current width still has a free code the
        value takes it and the width is unchanged; otherwise the width
        grows by one bit (a new all-zero bitmap vector is prepended by
        the index) and the value takes the first code with the new top
        bit set.

        Returns
        -------
        (code, expanded):
            The assigned code and whether the width grew.
        """
        if value in self._value_to_code:
            raise DuplicateValueError(f"value {value!r} already mapped")
        expanded = False
        try:
            code = self.next_free_code()
        except CodeWidthError:
            self.grow_width()
            expanded = True
            code = self.next_free_code()
        self.assign(value, code)
        return code, expanded

    def grow_width(self) -> None:
        """Add one code bit; existing codes keep their value (new MSB 0)."""
        self._width += 1

    def reassign_all(self, mapping: Dict[Hashable, int]) -> None:
        """Replace every binding at once (re-encoding).

        The new mapping must cover exactly the current value set and be
        one-to-one within the current width.
        """
        if set(mapping) != set(self._value_to_code):
            raise DomainError("re-encoding must cover exactly the same values")
        codes = list(mapping.values())
        if len(set(codes)) != len(codes):
            raise DuplicateCodeError("re-encoding assigns a code twice")
        for code in codes:
            if code < 0 or code >= (1 << self._width):
                raise CodeWidthError(
                    f"code {code} does not fit in width {self._width}"
                )
        self._value_to_code = dict(mapping)
        self._code_to_value = {
            code: value for value, code in mapping.items()
        }

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_rows(self) -> List[Tuple[str, str]]:
        """Render as (value, binary-code) rows, as the paper's figures."""
        return [
            (repr(value) if isinstance(value, _Sentinel) else str(value),
             format(code, f"0{self._width}b"))
            for value, code in self._value_to_code.items()
        ]

    def format_table(self) -> str:
        """Multi-line rendering mirroring the paper's mapping tables."""
        rows = self.to_rows()
        if not rows:
            return "(empty mapping)"
        value_width = max(len(value) for value, _ in rows)
        lines = [
            f"{value:<{value_width}}  {code}" for value, code in rows
        ]
        return "\n".join(lines)
