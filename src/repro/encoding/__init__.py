"""Encodings for encoded bitmap indexes.

Implements the paper's Section 2.2 theory (binary distance, chains,
prime chains, well-defined encodings — Definitions 2.2–2.5 and
Theorems 2.1–2.3) and the Section 2.3 applications (hierarchy
encoding, total-order preserving encoding, range-based encoding),
plus the heuristic search the paper defers to future work.
"""

from repro.encoding.mapping import MappingTable, VOID, NULL
from repro.encoding.distance import binary_distance, hamming_ball
from repro.encoding.chain import (
    is_chain,
    is_prime_chain,
    find_chain,
    find_prime_chain,
)
from repro.encoding.gray import gray_code, gray_sequence, inverse_gray
from repro.encoding.well_defined import (
    is_well_defined,
    verify_well_defined_cost,
    subcube_mask,
)
from repro.encoding.heuristics import (
    encode_for_predicates,
    random_encoding,
    sequential_encoding,
    encoding_cost,
)
from repro.encoding.hierarchy import Hierarchy, hierarchy_encoding
from repro.encoding.total_order import (
    bit_slice_encoding,
    order_preserving_encoding,
    is_order_preserving,
)
from repro.encoding.range_based import (
    RangePartition,
    partition_from_predicates,
    range_encoding,
)
from repro.encoding.reencoding import (
    ReencodingDecision,
    apply_reencoding,
    evaluate_reencoding,
)
from repro.encoding.mining import (
    MinedWorkload,
    encoding_from_history,
    extract_subdomains,
    mine_workload,
)

__all__ = [
    "MappingTable",
    "VOID",
    "NULL",
    "binary_distance",
    "hamming_ball",
    "is_chain",
    "is_prime_chain",
    "find_chain",
    "find_prime_chain",
    "gray_code",
    "gray_sequence",
    "inverse_gray",
    "is_well_defined",
    "verify_well_defined_cost",
    "subcube_mask",
    "encode_for_predicates",
    "random_encoding",
    "sequential_encoding",
    "encoding_cost",
    "Hierarchy",
    "hierarchy_encoding",
    "bit_slice_encoding",
    "order_preserving_encoding",
    "is_order_preserving",
    "RangePartition",
    "partition_from_predicates",
    "range_encoding",
    "ReencodingDecision",
    "apply_reencoding",
    "evaluate_reencoding",
    "MinedWorkload",
    "encoding_from_history",
    "extract_subdomains",
    "mine_workload",
]
