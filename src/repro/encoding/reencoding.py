"""Dynamic re-encoding cost model (Section 5, future work item 3).

"For application domains where the set of predefined selection
predicates changes over time, a model for evaluating the
cost-effectiveness of a reconstruction of the encoded bitmap indexes
is desirable."

The model: re-encoding rewrites all ``k`` vectors — ``O(n * k)`` bit
writes — and pays a one-time encoding search; it earns the per-query
difference in vectors accessed between the old and the candidate
encoding, weighted by the expected query frequencies.  Re-encoding
pays off when the amortised earnings over the planning horizon exceed
the rebuild cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.encoding.heuristics import (
    Predicate,
    encode_for_predicates,
    encoding_cost,
)
from repro.encoding.mapping import MappingTable
from repro.errors import InvalidArgumentError

if TYPE_CHECKING:
    from repro.index.encoded_bitmap import EncodedBitmapIndex


@dataclass(frozen=True)
class ReencodingDecision:
    """Outcome of a re-encoding evaluation."""

    #: vectors read per workload execution under the current mapping
    current_cost: float
    #: same under the best candidate found
    candidate_cost: float
    #: one-time rebuild cost in vector-bit writes (n * k)
    rebuild_cost: float
    #: executions of the workload needed to amortise the rebuild
    break_even_executions: float
    #: True when the horizon covers the break-even point
    worthwhile: bool
    candidate: MappingTable

    @property
    def saving_per_execution(self) -> float:
        return self.current_cost - self.candidate_cost


def evaluate_reencoding(
    current: MappingTable,
    predicates: Sequence[Predicate],
    table_size: int,
    horizon_executions: float,
    weights: Optional[Sequence[float]] = None,
    vector_read_cost: float = 1.0,
    bit_write_cost: float = 1.0 / 64.0,
    seed: Optional[int] = 0,
) -> ReencodingDecision:
    """Decide whether re-encoding for a new predicate set pays off.

    Parameters
    ----------
    current:
        The mapping currently deployed.
    predicates:
        The *new* predefined selections (with optional ``weights``).
    table_size:
        ``n`` — rows whose bits must be rewritten.
    horizon_executions:
        How many times the weighted workload is expected to run before
        the predicates change again.
    vector_read_cost / bit_write_cost:
        Relative cost units; the defaults charge one unit per vector
        read and one unit per 64 rewritten bits (a word write).
    """
    if horizon_executions < 0:
        raise InvalidArgumentError("horizon must be non-negative")
    current_cost = encoding_cost(current, predicates, weights)
    candidate = encode_for_predicates(
        current.domain(),
        predicates,
        weights=weights,
        reserve_void_zero=current.has_code(0)
        and current.decode(0) not in current.domain(),
        seed=seed,
    )
    candidate_cost = encoding_cost(candidate, predicates, weights)

    saving = (current_cost - candidate_cost) * vector_read_cost
    rebuild = table_size * candidate.width * bit_write_cost
    if saving <= 0:
        break_even = float("inf")
    else:
        break_even = rebuild / saving
    return ReencodingDecision(
        current_cost=current_cost,
        candidate_cost=candidate_cost,
        rebuild_cost=rebuild,
        break_even_executions=break_even,
        worthwhile=break_even <= horizon_executions,
        candidate=candidate,
    )


def apply_reencoding(
    index: "EncodedBitmapIndex", decision: ReencodingDecision
) -> None:
    """Rebuild an :class:`EncodedBitmapIndex` under the new mapping.

    Rewrites every bitmap vector in place (the O(n*k) cost the model
    charges) and installs the candidate mapping.
    """
    new_mapping = decision.candidate
    if set(new_mapping.domain()) != set(index.mapping.domain()):
        raise InvalidArgumentError(
            "candidate mapping does not cover the index domain"
        )
    translated = {}
    for value in index.mapping.values():
        if value in new_mapping:
            translated[value] = new_mapping.encode(value)
        else:
            # sentinels keep their old codes when absent from the
            # candidate (VOID stays at 0)
            translated[value] = index.mapping.encode(value)
    width = max(
        new_mapping.width,
        max(code.bit_length() for code in translated.values()) or 1,
    )
    rebuilt = MappingTable(width=width, reserve_void_zero=False)
    for value, code in translated.items():
        rebuilt.assign(value, code)

    column = index.table.column(index.column_name)
    void = index.table.void_rows()
    nbits = len(index.table)
    # Swap mapping + vectors, invalidate caches and bump the data
    # version atomically under the index's own lock (EBI302: foreign
    # writes to another object's _data_version are a protocol breach).
    index.apply_mapping(rebuilt)
    for row_id in range(nbits):
        if row_id in void:
            index._write_code(row_id, index._void_code())
        else:
            index._write_row(row_id, column[row_id])
    index.stats.maintenance_ops += nbits * width
