"""Hierarchy encoding (Section 2.3 of the paper).

Warehouse dimensions carry hierarchies (branch -> company -> alliance
in the paper's SALESPOINT example), and OLAP roll-ups select all base
values under one hierarchy element.  Hierarchy encoding builds an
encoded bitmap index whose mapping is well-defined with respect to
those selections, so e.g. ``alliance = X`` reads one bitmap vector.

Relationships may be m:N (the paper's example has branches belonging
to two companies), so a hierarchy level maps each element to an
arbitrary *set* of base values.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set

from repro.encoding.heuristics import encode_for_predicates
from repro.encoding.mapping import MappingTable
from repro.encoding.well_defined import check_mapping
from repro.errors import SchemaError


class Hierarchy:
    """A dimension hierarchy over a base domain.

    Parameters
    ----------
    base_values:
        The leaf-level domain (e.g. the 12 branches).
    levels:
        Ordered mapping ``level name -> {element -> members}`` where
        the first level's members are base values and each subsequent
        level's members are elements of the previous level.
    """

    def __init__(
        self,
        base_values: Iterable[Hashable],
        levels: "Mapping[str, Mapping[Hashable, Iterable[Hashable]]]",
    ) -> None:
        self._base_values: List[Hashable] = list(dict.fromkeys(base_values))
        base_set = set(self._base_values)
        self._levels: Dict[str, Dict[Hashable, Set[Hashable]]] = {}
        previous_elements: Set[Hashable] = base_set
        for name, elements in levels.items():
            resolved: Dict[Hashable, Set[Hashable]] = {}
            for element, members in elements.items():
                member_set = set(members)
                unknown = member_set - previous_elements
                if unknown:
                    raise SchemaError(
                        f"level {name!r}: element {element!r} references "
                        f"unknown members {sorted(map(str, unknown))}"
                    )
                resolved[element] = member_set
            self._levels[name] = resolved
            previous_elements = set(resolved)

    # ------------------------------------------------------------------
    @property
    def base_values(self) -> List[Hashable]:
        return list(self._base_values)

    @property
    def level_names(self) -> List[str]:
        return list(self._levels)

    def elements(self, level: str) -> List[Hashable]:
        """Elements of one hierarchy level."""
        return list(self._level(level))

    def members(self, level: str, element: Hashable) -> Set[Hashable]:
        """Direct members of ``element`` at ``level``."""
        elements = self._level(level)
        if element not in elements:
            raise SchemaError(
                f"element {element!r} not in level {level!r}"
            )
        return set(elements[element])

    def base_members(self, level: str, element: Hashable) -> Set[Hashable]:
        """Base-level values reachable from ``element`` (transitive)."""
        names = self.level_names
        depth = names.index(level) if level in names else -1
        if depth < 0:
            raise SchemaError(f"unknown hierarchy level {level!r}")
        frontier = self.members(level, element)
        for lower in reversed(names[:depth]):
            expanded: Set[Hashable] = set()
            lower_elements = self._level(lower)
            for member in frontier:
                expanded |= lower_elements[member]
            frontier = expanded
        return frontier

    def selection_predicates(self) -> List[List[Hashable]]:
        """One base-level IN-list per hierarchy element.

        These are the pre-defined predicates a well-defined hierarchy
        encoding must serve (the paper's set ``P``).
        """
        predicates: List[List[Hashable]] = []
        for level in self.level_names:
            for element in self.elements(level):
                members = sorted(
                    self.base_members(level, element), key=str
                )
                predicates.append(list(members))
        return predicates

    def _level(self, level: str) -> Dict[Hashable, Set[Hashable]]:
        try:
            return self._levels[level]
        except KeyError:
            raise SchemaError(f"unknown hierarchy level {level!r}") from None

    def __repr__(self) -> str:
        return (
            f"Hierarchy(base={len(self._base_values)}, "
            f"levels={self.level_names})"
        )


def hierarchy_encoding(
    hierarchy: Hierarchy,
    weights: Optional[Sequence[float]] = None,
    reserve_void_zero: bool = False,
    local_search_steps: int = 400,
    seed: Optional[int] = 0,
) -> MappingTable:
    """Build an encoding well-defined w.r.t. hierarchy selections.

    Delegates to :func:`encode_for_predicates` with one predicate per
    hierarchy element, reproducing the construction behind the paper's
    Figure 5.
    """
    predicates = hierarchy.selection_predicates()
    return check_mapping(encode_for_predicates(
        hierarchy.base_values,
        predicates,
        weights=weights,
        reserve_void_zero=reserve_void_zero,
        local_search_steps=local_search_steps,
        seed=seed,
    ))
