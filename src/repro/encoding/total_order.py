"""Total-order preserving encodings (Section 2.3).

For numeric/ordinal attributes, selections of the form
``j < A < i`` should remain evaluable without rewriting into IN-lists.
An encoding *preserves the total order* when ``a < b`` implies
``M(a) < M(b)`` as unsigned integers.  The trivial instance is the
machine representation itself — that choice turns the encoded bitmap
index into O'Neil & Quass's *bit-sliced index* — but the paper's
Figure 6 shows order-preserving encodings can simultaneously be
optimised for hot IN-lists by spending spare codes as gaps.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Sequence, Set

from repro.boolean.reduction import reduce_values
from repro.encoding.mapping import MappingTable, code_width
from repro.encoding.well_defined import check_mapping
from repro.errors import InvalidArgumentError


def bit_slice_encoding(
    values: Iterable, reserve_void_zero: bool = False
) -> MappingTable:
    """Encode sorted values onto consecutive integers ``0..m-1``.

    This is the canonical total-order preserving encoding; on integer
    domains it coincides (up to an offset) with the machine
    representation, i.e. the bit-sliced index of [O'Neil & Quass 97].
    """
    ordered = sorted(set(values))
    offset = 1 if reserve_void_zero else 0
    width = code_width(max(1, len(ordered) + offset))
    table = MappingTable(width=width, reserve_void_zero=reserve_void_zero)
    for position, value in enumerate(ordered):
        table.assign(value, position + offset)
    return check_mapping(table)


def is_order_preserving(mapping: MappingTable) -> bool:
    """Check that the mapping preserves the domain's total order.

    Sentinels (VOID/NULL) are excluded from the check.
    """
    values = mapping.domain()
    try:
        ordered = sorted(values)
    except TypeError:
        raise InvalidArgumentError(
            "domain values are not totally ordered; cannot check"
        ) from None
    codes = [mapping.encode(value) for value in ordered]
    return all(a < b for a, b in zip(codes, codes[1:]))


def order_preserving_encoding(
    values: Iterable,
    hot_sets: Sequence[Sequence[Hashable]] = (),
    reserve_void_zero: bool = False,
) -> MappingTable:
    """Order-preserving encoding tuned for hot IN-lists (Figure 6).

    The spare codes of the k-cube are inserted as *gaps* between
    consecutive values so that each hot set, while keeping the global
    order, starts on an alignment boundary that lets its retrieval
    function reduce.  The placement is a greedy scan: gaps are spent
    where they align the next hot-set boundary to the largest possible
    power of two.

    Parameters
    ----------
    values:
        Totally ordered domain.
    hot_sets:
        IN-lists expected to be queried often; each should contain
        domain values.
    reserve_void_zero:
        Keep code 0 for the void sentinel.
    """
    ordered = sorted(set(values))
    offset = 1 if reserve_void_zero else 0
    width = code_width(max(1, len(ordered) + offset))
    spare = (1 << width) - len(ordered) - offset

    candidates = []
    for boundaries in _boundary_candidates(ordered, hot_sets):
        codes = _assign_with_gaps(
            len(ordered), offset, spare, boundaries
        )
        table = MappingTable(
            width=width, reserve_void_zero=reserve_void_zero
        )
        for value, code in zip(ordered, codes):
            table.assign(value, code)
        candidates.append(table)

    if len(candidates) == 1 or not hot_sets:
        return check_mapping(candidates[0])
    return check_mapping(
        min(
            candidates,
            key=lambda table: sum(
                _hot_set_cost(table, hot) for hot in hot_sets
            ),
        )
    )


def _boundary_candidates(
    ordered: List[Hashable],
    hot_sets: Sequence[Sequence[Hashable]],
) -> Iterator[Set[Hashable]]:
    """Gap-placement strategies to evaluate: no gaps, run starts,
    and run starts + ends of each hot set's consecutive components."""
    yield set()
    starts = set()
    starts_and_ends = set()
    index_of = {value: i for i, value in enumerate(ordered)}
    for hot in hot_sets:
        positions = sorted(index_of[value] for value in hot)
        if not positions:
            continue
        # maximal runs of consecutive positions
        run_start = positions[0]
        previous = positions[0]
        for position in positions[1:] + [None]:
            if position is None or position != previous + 1:
                starts.add(run_start)
                starts_and_ends.add(run_start)
                if previous + 1 < len(ordered):
                    starts_and_ends.add(previous + 1)
                if position is not None:
                    run_start = position
            if position is not None:
                previous = position
    yield starts
    if starts_and_ends != starts:
        yield starts_and_ends


def _assign_with_gaps(
    count: int, offset: int, spare: int, boundaries: set
) -> List[int]:
    codes: List[int] = []
    next_code = offset
    remaining = spare
    for position in range(count):
        if position in boundaries and remaining > 0:
            alignment = _best_alignment(next_code, remaining)
            remaining -= alignment - next_code
            next_code = alignment
        codes.append(next_code)
        next_code += 1
    return codes


def _hot_set_cost(mapping: MappingTable, hot: Sequence[Hashable]) -> int:
    codes = [mapping.encode(value) for value in hot]
    reduced = reduce_values(
        codes, mapping.width, dont_cares=mapping.unused_codes()
    )
    return reduced.vector_count()


def _hot_boundaries(ordered: List, hot_sets: Sequence[Sequence]) -> set:
    """Positions where a hot set begins or ends (exclusive end)."""
    index_of = {value: i for i, value in enumerate(ordered)}
    boundaries = set()
    for hot in hot_sets:
        positions = sorted(index_of[value] for value in hot)
        if not positions:
            continue
        boundaries.add(positions[0])
        end = positions[-1] + 1
        if end < len(ordered):
            boundaries.add(end)
    return boundaries


def _best_alignment(code: int, spare: int) -> int:
    """Smallest aligned code reachable within ``spare`` gap codes.

    Prefers the strongest power-of-two alignment affordable.
    """
    best = code
    for power in range(1, 64):
        step = 1 << power
        if step > code + spare + 1:
            break
        aligned = (code + step - 1) // step * step
        if aligned - code > spare:
            continue
        best = aligned
    return best


def range_cost(
    mapping: MappingTable,
    low: Hashable,
    high: Hashable,
    inclusive: bool = True,
) -> int:
    """Vectors accessed for ``low <= A <= high`` under the mapping.

    The range is rewritten into the IN-list of covered domain values
    (always possible on discrete domains, as the paper notes) and then
    reduced with unused codes as don't-cares.
    """
    selected = [
        value
        for value in mapping.domain()
        if (low <= value <= high if inclusive else low < value < high)
    ]
    if not selected:
        return 0
    codes = [mapping.encode(value) for value in selected]
    reduced = reduce_values(
        codes, mapping.width, dont_cares=mapping.unused_codes()
    )
    return reduced.vector_count()
