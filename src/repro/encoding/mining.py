"""Mining encodings from query history (Section 5, future work item 4).

"If selection predicates are not predictable, a proper encoding is,
however, achievable through an analysis of the history of users'
queries."

This module turns a query log into the weighted predicate set the
encoding heuristics consume: IN-lists and discrete ranges are
extracted from each logged predicate tree, identical subdomains are
merged with summed frequencies, and rare subdomains are pruned.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.encoding.heuristics import encode_for_predicates
from repro.encoding.mapping import MappingTable
from repro.encoding.well_defined import check_mapping
from repro.query.predicates import (
    AndPredicate,
    Equals,
    InList,
    NotPredicate,
    OrPredicate,
    Predicate,
    Range,
)


def _sorted_values(values: Iterable[Hashable]) -> List[Hashable]:
    """Sort by natural order, falling back to string order for mixed
    or unorderable types."""
    values = list(values)
    try:
        return sorted(values)
    except TypeError:
        return sorted(values, key=str)


@dataclass(frozen=True)
class MinedWorkload:
    """Predicate subdomains extracted from a query log."""

    column: str
    subdomains: Tuple[Tuple[Hashable, ...], ...]
    weights: Tuple[float, ...]

    def total_observations(self) -> float:
        return sum(self.weights)


def extract_subdomains(
    predicate: Predicate, column: str, domain: Sequence[Hashable]
) -> List[Tuple[Hashable, ...]]:
    """IN-list style subdomains a predicate induces on ``column``.

    Ranges are rewritten to the covered domain values (the paper's
    discrete-domain rewrite); single-value selections are kept — they
    carry no encoding preference but count toward frequencies.
    """
    found: List[Tuple[Hashable, ...]] = []
    if isinstance(predicate, (AndPredicate, OrPredicate)):
        for operand in predicate.operands:
            found.extend(extract_subdomains(operand, column, domain))
        return found
    if isinstance(predicate, NotPredicate):
        return extract_subdomains(predicate.operand, column, domain)
    if predicate.columns() != frozenset((column,)):
        return found
    if isinstance(predicate, InList):
        values = tuple(
            _sorted_values(
                v for v in predicate.values if v in set(domain)
            )
        )
        if values:
            found.append(values)
    elif isinstance(predicate, Range):
        values = tuple(
            _sorted_values(
                v for v in domain if predicate.matches({column: v})
            )
        )
        if values:
            found.append(values)
    elif isinstance(predicate, Equals):
        if predicate.value in set(domain):
            found.append((predicate.value,))
    return found


def mine_workload(
    history: Iterable[Predicate],
    column: str,
    domain: Sequence[Hashable],
    min_support: int = 2,
    max_subdomains: int = 16,
) -> MinedWorkload:
    """Distil a query log into weighted subdomains.

    Parameters
    ----------
    history:
        Logged predicate trees (any mix of columns; others ignored).
    min_support:
        Subdomains observed fewer times are dropped.
    max_subdomains:
        Keep only the most frequent subdomains (capping the encoding
        search).
    """
    counter: Counter = Counter()
    for predicate in history:
        for subdomain in extract_subdomains(predicate, column, domain):
            if len(subdomain) >= 2:  # singletons don't constrain codes
                counter[subdomain] += 1
    kept = [
        (subdomain, weight)
        for subdomain, weight in counter.most_common(max_subdomains)
        if weight >= min_support
    ]
    return MinedWorkload(
        column=column,
        subdomains=tuple(subdomain for subdomain, _ in kept),
        weights=tuple(float(weight) for _, weight in kept),
    )


def encoding_from_history(
    history: Iterable[Predicate],
    column: str,
    domain: Sequence[Hashable],
    min_support: int = 2,
    max_subdomains: int = 16,
    reserve_void_zero: bool = True,
    seed: Optional[int] = 0,
) -> MappingTable:
    """End to end: query log -> mined subdomains -> encoding."""
    mined = mine_workload(
        history, column, domain,
        min_support=min_support, max_subdomains=max_subdomains,
    )
    return check_mapping(
        encode_for_predicates(
            domain,
            [list(subdomain) for subdomain in mined.subdomains],
            weights=list(mined.weights) or None,
            reserve_void_zero=reserve_void_zero,
            seed=seed,
        )
    )
